//! The [`SimNetwork`]: discrete-event message delivery, virtual time,
//! failure injection and accounting glue.
//!
//! Messages are no longer a synchronous FIFO: every send draws a link
//! latency from the network's [`LatencyModel`] and is scheduled on a
//! binary-heap event queue keyed by virtual delivery time.  Two clocks
//! cooperate:
//!
//! * the **arrival clock** (moved by [`SimNetwork::advance_to`]) is where
//!   newly issued operations begin — an open-loop workload advances it to
//!   each operation's arrival time, so operations *interleave* in virtual
//!   time instead of executing back-to-back;
//! * each operation's **frontier** (tracked in [`OpStats`]) is the delivery
//!   time of the latest hop in its request chain — the next hop departs from
//!   there, so an operation's latency is the sum of its own hop chain while
//!   independent operations overlap freely.
//!
//! [`SimNetwork::now`] reports the high-water mark over both, i.e. the
//! virtual instant the simulation has reached.  With the default
//! constant-zero latency model every delivery happens "instantly": the queue
//! degenerates to FIFO order (ties break by send sequence) and message
//! counts are bit-identical to the old count-only substrate.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::message::{Envelope, NetMessage};
use crate::peer::{PeerId, PeerRegistry, PeerStatus};
use crate::stats::{MessageStats, OpScope};
use crate::time::{LatencyModel, RegionMap, SimTime};
use crate::trace::{HopRecord, LinkKind, TraceBuffer, TraceConfig};

/// Error returned by [`SimNetwork::send`] when the *sender* is not a live
/// peer (sending from a dead peer indicates a protocol bug, not a simulated
/// fault, so it is an error rather than a counted failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The sending peer is unknown to the registry.
    UnknownSender(PeerId),
    /// The sending peer exists but is not alive.
    DeadSender(PeerId),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownSender(p) => write!(f, "unknown sender {p}"),
            SendError::DeadSender(p) => write!(f, "sender {p} is not alive"),
        }
    }
}

impl std::error::Error for SendError {}

/// Delivery failure surfaced by [`SimNetwork::deliver_next`]: the destination
/// peer was dead when the message arrived.  Protocols use this to trigger
/// their fault-tolerance paths (paper §III-C/D).
#[derive(Clone, Debug)]
pub struct DeliveryError<M> {
    /// The message that could not be delivered.
    pub envelope: Envelope<M>,
    /// Status of the destination at delivery time.
    pub destination_status: Option<PeerStatus>,
}

/// One scheduled delivery in the event queue.
///
/// Ordered by `(deliver_at, seq)`: earliest delivery first, and equal
/// timestamps (the whole simulation, under the zero-latency model) fall back
/// to send order, preserving the legacy FIFO semantics exactly.
#[derive(Clone, Debug)]
struct Scheduled<M> {
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> Scheduled<M> {
    fn deliver_at(&self) -> SimTime {
        self.envelope.deliver_at
    }
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at() == other.deliver_at() && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at(), self.seq).cmp(&(other.deliver_at(), other.seq))
    }
}

/// One region's slice of the sharded event queue.
///
/// `local` holds events whose source and destination live in this region —
/// under a thread-per-region execution these run lock-free within the
/// shard.  `inbound` holds events crossing into this region from another
/// one; they are what the conservative time-window barrier synchronises on.
#[derive(Clone, Debug)]
struct Shard<M> {
    local: BinaryHeap<Reverse<Scheduled<M>>>,
    inbound: BinaryHeap<Reverse<Scheduled<M>>>,
}

impl<M> Shard<M> {
    fn new() -> Self {
        Self {
            local: BinaryHeap::new(),
            inbound: BinaryHeap::new(),
        }
    }
}

/// The event queue: a single heap under non-regional latency models, or one
/// [`Shard`] per region when the network models a [`Regional`]
/// (`LatencyModel::Regional`) topology.
///
/// The sharded form preserves the exact global delivery order of the single
/// heap — every pop selects the globally minimal `(deliver_at, seq)` across
/// all shard heaps — so sharding is invisible to message semantics and runs
/// stay bit-deterministic regardless of how shards are driven.
#[derive(Clone, Debug)]
enum EventQueue<M> {
    Single(BinaryHeap<Reverse<Scheduled<M>>>),
    Sharded {
        map: RegionMap,
        shards: Vec<Shard<M>>,
    },
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue::Single(BinaryHeap::new())
    }
}

impl<M> EventQueue<M> {
    fn sharded(map: RegionMap) -> Self {
        let shards = (0..map.regions()).map(|_| Shard::new()).collect();
        EventQueue::Sharded { map, shards }
    }

    fn push(&mut self, item: Scheduled<M>) {
        match self {
            EventQueue::Single(heap) => heap.push(Reverse(item)),
            EventQueue::Sharded { map, shards } => {
                let from = map.region_of(item.envelope.from);
                let to = map.region_of(item.envelope.to);
                let shard = &mut shards[to as usize];
                if from == to {
                    shard.local.push(Reverse(item));
                } else {
                    shard.inbound.push(Reverse(item));
                }
            }
        }
    }

    /// Key of the globally earliest event: `(deliver_at, seq)`.
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heaps()
            .filter_map(|heap| heap.peek().map(|Reverse(s)| (s.deliver_at(), s.seq)))
            .min()
    }

    fn pop(&mut self) -> Option<Scheduled<M>> {
        match self {
            EventQueue::Single(heap) => heap.pop().map(|Reverse(s)| s),
            EventQueue::Sharded { shards, .. } => {
                let mut best: Option<(usize, bool, (SimTime, u64))> = None;
                for (i, shard) in shards.iter().enumerate() {
                    for (is_local, heap) in [(true, &shard.local), (false, &shard.inbound)] {
                        if let Some(Reverse(s)) = heap.peek() {
                            let key = (s.deliver_at(), s.seq);
                            if best.is_none_or(|(_, _, k)| key < k) {
                                best = Some((i, is_local, key));
                            }
                        }
                    }
                }
                let (i, is_local, _) = best?;
                let heap = if is_local {
                    &mut shards[i].local
                } else {
                    &mut shards[i].inbound
                };
                heap.pop().map(|Reverse(s)| s)
            }
        }
    }

    fn len(&self) -> usize {
        self.heaps().map(BinaryHeap::len).sum()
    }

    fn clear(&mut self) {
        match self {
            EventQueue::Single(heap) => heap.clear(),
            EventQueue::Sharded { shards, .. } => {
                for shard in shards {
                    shard.local.clear();
                    shard.inbound.clear();
                }
            }
        }
    }

    /// Removes and returns every pending event (in no particular order);
    /// used when the queue is restructured after a latency-model swap.
    fn drain_all(&mut self) -> Vec<Scheduled<M>> {
        let mut out = Vec::with_capacity(self.len());
        match self {
            EventQueue::Single(heap) => out.extend(heap.drain().map(|Reverse(s)| s)),
            EventQueue::Sharded { shards, .. } => {
                for shard in shards {
                    out.extend(shard.local.drain().map(|Reverse(s)| s));
                    out.extend(shard.inbound.drain().map(|Reverse(s)| s));
                }
            }
        }
        out
    }

    fn heaps(&self) -> impl Iterator<Item = &BinaryHeap<Reverse<Scheduled<M>>>> {
        let (single, shards): (_, &[Shard<M>]) = match self {
            EventQueue::Single(heap) => (Some(heap), &[][..]),
            EventQueue::Sharded { shards, .. } => (None, shards.as_slice()),
        };
        single.into_iter().chain(
            shards
                .iter()
                .flat_map(|s| [&s.local, &s.inbound].into_iter()),
        )
    }

    fn shard_count(&self) -> usize {
        match self {
            EventQueue::Single(_) => 1,
            EventQueue::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Earliest pending **cross-region** delivery, if any.
    fn inter_region_frontier(&self) -> Option<SimTime> {
        match self {
            EventQueue::Single(_) => None,
            EventQueue::Sharded { shards, .. } => shards
                .iter()
                .filter_map(|s| s.inbound.peek().map(|Reverse(e)| e.deliver_at()))
                .min(),
        }
    }
}

/// A deterministic discrete-event message-passing network simulator.
///
/// Every send is counted in [`MessageStats`] and scheduled for delivery at
/// `frontier(op) + latency(src, dst)`; failed deliveries (dead destination)
/// are counted separately and returned to the caller.
#[derive(Clone, Debug, Default)]
pub struct SimNetwork<M> {
    peers: PeerRegistry,
    queue: EventQueue<M>,
    next_seq: u64,
    /// Where newly issued operations begin (moved by `advance_to`).
    arrival_clock: SimTime,
    /// High-water mark of every delivery scheduled or performed.
    horizon: SimTime,
    latency: LatencyModel,
    stats: MessageStats,
    /// Opt-in route recorder; `None` (the default) is a pure `is_some`
    /// check on every hot path, so disabled tracing costs nothing.
    trace: Option<Box<TraceBuffer>>,
}

impl<M: NetMessage> SimNetwork<M> {
    /// Creates an empty network with no peers and the count-only
    /// (zero-latency) model.
    pub fn new() -> Self {
        Self::with_latency(LatencyModel::zero())
    }

    /// Creates an empty network with an explicit latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        Self {
            peers: PeerRegistry::new(),
            queue: latency
                .region_map()
                .map_or_else(EventQueue::default, EventQueue::sharded),
            next_seq: 0,
            arrival_clock: SimTime::ZERO,
            horizon: SimTime::ZERO,
            latency,
            stats: MessageStats::new(),
            trace: None,
        }
    }

    /// Replaces the latency model.
    ///
    /// Typically called right after construction; swapping models mid-run is
    /// allowed (pending messages keep their already-drawn delivery times).
    /// Installing a [`Regional`](LatencyModel::Regional) model restructures
    /// the event queue into one shard per region (and a non-regional model
    /// collapses it back to a single heap); pending events are re-filed into
    /// the new layout without changing their delivery order.
    pub fn set_latency_model(&mut self, latency: LatencyModel) {
        let pending = self.queue.drain_all();
        self.queue = latency
            .region_map()
            .map_or_else(EventQueue::default, EventQueue::sharded);
        for item in pending {
            self.queue.push(item);
        }
        self.latency = latency;
    }

    /// Number of event-queue shards: one per region under a regional
    /// latency model, otherwise 1.
    pub fn shard_count(&self) -> usize {
        self.queue.shard_count()
    }

    /// The conservative time-window barrier of the sharded queue: the
    /// earliest pending **cross-region** delivery.  Every shard may safely
    /// run its intra-region events up to (but not past) this instant without
    /// observing another shard; delivering the cross-region event first
    /// re-opens the window.  `None` when no cross-region event is pending
    /// (or the queue is unsharded), meaning shards are fully independent
    /// until the next inter-region send.
    pub fn inter_region_frontier(&self) -> Option<SimTime> {
        self.queue.inter_region_frontier()
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Draws one link-latency sample for the `from → to` link at the current
    /// virtual instant, advancing the model's latency stream.
    ///
    /// Protocols use this for delays that ride on the topology but are not
    /// messages — e.g. the failure-detection round-trip that offsets a
    /// deferred repair.  The draw comes from the same seeded streams as
    /// message deliveries, so runs stay deterministic.
    pub fn sample_latency(&mut self, from: PeerId, to: PeerId) -> SimTime {
        let at = self.now();
        self.latency.sample(from, to, at)
    }

    /// The virtual instant the simulation has reached: the latest of the
    /// arrival clock and every delivery performed or scheduled.
    pub fn now(&self) -> SimTime {
        self.horizon.max(self.arrival_clock)
    }

    /// Advances the arrival clock to `at` (no-op if it is already past it).
    ///
    /// Operations begun after this call are stamped as issued at `at`; the
    /// open-loop workload runner calls this with each operation's scheduled
    /// arrival time so that independent operations overlap in virtual time.
    pub fn advance_to(&mut self, at: SimTime) {
        self.arrival_clock = self.arrival_clock.max(at);
    }

    /// Registers a new live peer.
    pub fn add_peer(&mut self) -> PeerId {
        self.peers.register()
    }

    /// Read-only access to the peer registry.
    pub fn peers(&self) -> &PeerRegistry {
        &self.peers
    }

    /// Marks a peer as failed (abrupt departure).
    pub fn fail_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_failed(peer)
    }

    /// Marks a peer as gracefully departed.
    pub fn depart_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_departed(peer)
    }

    /// Brings a departed/failed peer back (e.g. a leaf re-joining during
    /// load balancing).
    pub fn revive_peer(&mut self, peer: PeerId) -> bool {
        self.peers.mark_alive(peer)
    }

    /// `true` if the peer is currently alive.
    pub fn is_alive(&self, peer: PeerId) -> bool {
        self.peers.is_alive(peer)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Mutable access to statistics (used by harnesses to reset per-peer
    /// counters between experiment phases).
    pub fn stats_mut(&mut self) -> &mut MessageStats {
        &mut self.stats
    }

    /// Opens a new operation accounting scope with the given label, issued
    /// at the current arrival clock.
    pub fn begin_op(&mut self, label: &str) -> OpScope {
        let scope = self.stats.begin_op_at(label, self.arrival_clock);
        if let Some(trace) = &mut self.trace {
            trace.begin(scope.id, label, self.arrival_clock);
        }
        scope
    }

    /// Closes an operation scope, stamping the operation's completion time
    /// (the latest of its request-chain frontier and every notification it
    /// broadcast).  The operation's virtual latency becomes readable through
    /// [`OpStats::latency`](crate::stats::OpStats::latency).
    pub fn finish_op(&mut self, scope: OpScope) {
        self.stats.finish_op(scope.id);
        if let Some(trace) = &mut self.trace {
            let at = self
                .stats
                .op(scope.id)
                .and_then(|s| s.finished_at)
                .unwrap_or(self.arrival_clock);
            trace.finish(scope.id, at);
        }
    }

    /// Installs a route recorder: every sampled operation begun from now on
    /// records a [`Span`](crate::trace::Span) of its hops, bounded by the
    /// config's ring-buffer capacity.  Tracing is pure observation — it
    /// never perturbs statistics, latency draws or the event queue.
    pub fn set_trace(&mut self, config: TraceConfig) {
        self.trace = Some(Box::new(TraceBuffer::new(config)));
    }

    /// Removes and returns the route recorder, disabling tracing.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take().map(|boxed| *boxed)
    }

    /// `true` while a route recorder is installed.  Overlays check this
    /// before doing any per-hop link classification work, keeping the
    /// disabled path zero-cost.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Read-only access to the installed route recorder, if any.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_deref()
    }

    /// Sends a message from `from` to `to`, attributed to operation `op`,
    /// with an explicit hop count.
    ///
    /// The message is counted immediately (the paper counts *passing
    /// messages*, i.e. transmissions, regardless of whether the destination
    /// turns out to be dead) and scheduled for delivery at the operation's
    /// frontier plus one link-latency draw.
    pub fn send_with_hop(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        hop: u32,
        payload: M,
    ) -> Result<(), SendError> {
        self.send_with_kind(op, from, to, hop, LinkKind::Other, payload)
    }

    /// [`send_with_hop`](Self::send_with_hop) with an explicit link-kind tag
    /// for the route recorder.
    ///
    /// Overlays call this from their send sites with the class of the link
    /// the hop travels (BATON parent/child/adjacent/routing-table, Chord
    /// successor/finger, …); the tag is only consumed when tracing is
    /// enabled and never affects accounting or scheduling.
    pub fn send_with_kind(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        hop: u32,
        kind: LinkKind,
        payload: M,
    ) -> Result<(), SendError> {
        match self.peers.status(from) {
            None => return Err(SendError::UnknownSender(from)),
            Some(status) if !status.is_alive() => return Err(SendError::DeadSender(from)),
            Some(_) => {}
        }
        let bytes = payload.approximate_size();
        let message = payload.kind();
        self.stats.record_send(op.id, message, bytes, hop);
        let sent_at = self.stats.op_frontier(op.id).unwrap_or(self.arrival_clock);
        let deliver_at = sent_at + self.latency.sample(from, to, sent_at);
        self.horizon = self.horizon.max(deliver_at);
        if let Some(trace) = &mut self.trace {
            // Recorded optimistically as delivered; `deliver_next` flips
            // the flag if the destination turns out to be dead.
            let detour = self.stats.op(op.id).is_some_and(|s| s.in_detour());
            trace.record_hop(
                op.id,
                HopRecord {
                    from,
                    to,
                    hop,
                    kind,
                    message,
                    sent_at,
                    arrive_at: deliver_at,
                    delivered: true,
                    detour,
                },
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            seq,
            envelope: Envelope {
                from,
                to,
                hop,
                op: op.id,
                deliver_at,
                payload,
            },
        });
        Ok(())
    }

    /// Sends a message with hop count 1 (first hop of an operation).
    pub fn send(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        payload: M,
    ) -> Result<(), SendError> {
        self.send_with_hop(op, from, to, 1, payload)
    }

    /// Counts a message without enqueuing it for delivery.
    ///
    /// Several BATON maintenance steps are pure notifications whose replies
    /// carry no protocol state the simulation needs to model (e.g. "inform
    /// your children about the new node", paper §III-A). `count_message`
    /// charges such traffic to the operation without forcing the caller to
    /// round-trip a payload through the queue.
    ///
    /// Notifications still take time on the wire: each draws a latency and
    /// lands at `frontier(op) + latency`, extending the operation's
    /// *completion* time — but, being fire-and-forget, they run in parallel
    /// with the request chain and never push its frontier.
    pub fn count_message(&mut self, op: OpScope, kind: &'static str, from: PeerId, to: PeerId) {
        self.stats.record_send(op.id, kind, 64, 1);
        let sent_at = self.stats.op_frontier(op.id).unwrap_or(self.arrival_clock);
        let lands_at = sent_at + self.latency.sample(from, to, sent_at);
        self.horizon = self.horizon.max(lands_at);
        self.stats.extend_op_completion(op.id, lands_at);
        let delivered = self.peers.is_alive(to);
        if delivered {
            self.stats.record_delivery(to);
        } else {
            self.stats.record_failure(op.id);
        }
        if let Some(trace) = &mut self.trace {
            let detour = self.stats.op(op.id).is_some_and(|s| s.in_detour());
            trace.record_hop(
                op.id,
                HopRecord {
                    from,
                    to,
                    hop: 1,
                    kind: LinkKind::Notify,
                    message: kind,
                    sent_at,
                    arrive_at: lands_at,
                    delivered,
                    detour,
                },
            );
        }
    }

    /// Number of messages waiting for delivery.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Virtual delivery time of the next queued message, if any.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|(at, _)| at)
    }

    /// Delivers the earliest queued message, advancing virtual time.
    ///
    /// * `None` — the queue is empty.
    /// * `Some(Ok(envelope))` — the destination is alive; the caller should
    ///   invoke the destination's handler.
    /// * `Some(Err(DeliveryError))` — the destination is dead; the caller
    ///   owns fault handling.  A bounce takes wire time like any delivery,
    ///   so the operation's frontier advances either way.
    #[allow(clippy::type_complexity)]
    pub fn deliver_next(&mut self) -> Option<Result<Envelope<M>, DeliveryError<M>>> {
        let scheduled = self.queue.pop()?;
        let envelope = scheduled.envelope;
        self.horizon = self.horizon.max(envelope.deliver_at);
        self.stats
            .advance_op_frontier(envelope.op, envelope.deliver_at);
        let status = self.peers.status(envelope.to);
        if status.is_some_and(PeerStatus::is_alive) {
            self.stats.record_delivery(envelope.to);
            Some(Ok(envelope))
        } else {
            self.stats.record_failure(envelope.op);
            if let Some(trace) = &mut self.trace {
                trace.mark_bounce(envelope.op, envelope.to, envelope.deliver_at);
            }
            Some(Err(DeliveryError {
                envelope,
                destination_status: status,
            }))
        }
    }

    /// Discards all queued messages (used between experiment phases).
    pub fn drain_queue(&mut self) {
        self.queue.clear();
    }

    /// Messages attributed to operation `op` so far.
    pub fn op_messages(&self, op: OpScope) -> u64 {
        self.stats.op(op.id).map(|s| s.messages).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Hello,
        World,
    }

    impl NetMessage for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Hello => "hello",
                Msg::World => "world",
            }
        }
    }

    fn two_peer_net() -> (SimNetwork<Msg>, PeerId, PeerId) {
        let mut net = SimNetwork::new();
        let a = net.add_peer();
        let b = net.add_peer();
        (net, a, b)
    }

    #[test]
    fn send_and_deliver_fifo_order() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, b, a, Msg::World).unwrap();
        assert_eq!(net.pending(), 2);
        let first = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.payload, Msg::Hello);
        assert_eq!(first.to, b);
        let second = net.deliver_next().unwrap().unwrap();
        assert_eq!(second.payload, Msg::World);
        assert!(net.deliver_next().is_none());
        assert_eq!(net.stats().total_sent(), 2);
        assert_eq!(net.stats().total_delivered(), 2);
        // Zero-latency model: no virtual time passes.
        assert_eq!(net.now(), SimTime::ZERO);
    }

    #[test]
    fn sending_from_dead_peer_is_an_error() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.fail_peer(a);
        let err = net.send(op, a, b, Msg::Hello).unwrap_err();
        assert_eq!(err, SendError::DeadSender(a));
        assert_eq!(net.stats().total_sent(), 0);
    }

    #[test]
    fn sending_from_unknown_peer_is_an_error() {
        let (mut net, _a, b) = two_peer_net();
        let op = net.begin_op("test");
        let ghost = PeerId(999);
        let err = net.send(op, ghost, b, Msg::Hello).unwrap_err();
        assert_eq!(err, SendError::UnknownSender(ghost));
    }

    #[test]
    fn delivery_to_dead_peer_is_counted_and_surfaced() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.fail_peer(b);
        let result = net.deliver_next().unwrap();
        let err = result.unwrap_err();
        assert_eq!(err.envelope.to, b);
        assert_eq!(err.destination_status, Some(PeerStatus::Failed));
        assert_eq!(net.stats().total_failed(), 1);
        assert_eq!(net.stats().total_delivered(), 0);
        // The send itself is still counted: the paper counts transmissions.
        assert_eq!(net.stats().total_sent(), 1);
        assert_eq!(net.op_messages(op), 1);
        assert_eq!(net.stats().op(op.id).unwrap().failed_deliveries, 1);
    }

    #[test]
    fn count_message_charges_op_without_queueing() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("notify");
        net.count_message(op, "notify.children", a, b);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.op_messages(op), 1);
        assert_eq!(net.stats().total_delivered(), 1);
        net.fail_peer(b);
        net.count_message(op, "notify.children", a, b);
        assert_eq!(net.stats().total_failed(), 1);
    }

    #[test]
    fn revive_peer_restores_delivery() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.depart_peer(b);
        net.send(op, a, b, Msg::Hello).unwrap();
        assert!(net.deliver_next().unwrap().is_err());
        net.revive_peer(b);
        net.send(op, a, b, Msg::Hello).unwrap();
        assert!(net.deliver_next().unwrap().is_ok());
    }

    #[test]
    fn hop_counts_are_preserved_and_tracked() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("walk");
        net.send_with_hop(op, a, b, 7, Msg::Hello).unwrap();
        let env = net.deliver_next().unwrap().unwrap();
        assert_eq!(env.hop, 7);
        assert_eq!(net.stats().op(op.id).unwrap().max_hops, 7);
    }

    #[test]
    fn drain_queue_discards_pending_messages() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::Hello).unwrap();
        net.drain_queue();
        assert_eq!(net.pending(), 0);
        assert!(net.deliver_next().is_none());
    }

    #[test]
    fn per_kind_counters() {
        let (mut net, a, b) = two_peer_net();
        let op = net.begin_op("test");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, a, b, Msg::World).unwrap();
        assert_eq!(net.stats().kind_count("hello"), 2);
        assert_eq!(net.stats().kind_count("world"), 1);
    }

    #[test]
    fn constant_latency_accumulates_along_a_hop_chain() {
        let mut net: SimNetwork<Msg> =
            SimNetwork::with_latency(LatencyModel::constant(SimTime::from_millis(10)));
        let a = net.add_peer();
        let b = net.add_peer();
        let c = net.add_peer();
        let op = net.begin_op("chain");
        net.send_with_hop(op, a, b, 1, Msg::Hello).unwrap();
        let env = net.deliver_next().unwrap().unwrap();
        assert_eq!(env.deliver_at, SimTime::from_millis(10));
        net.send_with_hop(op, b, c, 2, Msg::Hello).unwrap();
        let env = net.deliver_next().unwrap().unwrap();
        assert_eq!(env.deliver_at, SimTime::from_millis(20));
        net.finish_op(op);
        assert_eq!(
            net.stats().op(op.id).unwrap().latency(),
            Some(SimTime::from_millis(20))
        );
        assert_eq!(net.now(), SimTime::from_millis(20));
    }

    #[test]
    fn operations_started_at_different_arrivals_overlap() {
        let mut net: SimNetwork<Msg> =
            SimNetwork::with_latency(LatencyModel::constant(SimTime::from_millis(10)));
        let a = net.add_peer();
        let b = net.add_peer();
        // Op 1 arrives at t=0 and takes two 10ms hops -> finishes at 20ms.
        let op1 = net.begin_op("op1");
        // Op 2 arrives at t=5ms and takes one hop -> finishes at 15ms,
        // *before* op 1, even though it is processed afterwards.
        net.advance_to(SimTime::from_millis(5));
        let op2 = net.begin_op("op2");

        net.send(op1, a, b, Msg::Hello).unwrap();
        net.deliver_next().unwrap().unwrap();
        net.send_with_hop(op1, b, a, 2, Msg::Hello).unwrap();
        net.deliver_next().unwrap().unwrap();
        net.finish_op(op1);

        net.send(op2, a, b, Msg::World).unwrap();
        net.deliver_next().unwrap().unwrap();
        net.finish_op(op2);

        let s1 = net.stats().op(op1.id).unwrap();
        let s2 = net.stats().op(op2.id).unwrap();
        assert_eq!(s1.latency(), Some(SimTime::from_millis(20)));
        assert_eq!(s2.latency(), Some(SimTime::from_millis(10)));
        assert_eq!(s2.started_at, SimTime::from_millis(5));
        assert_eq!(s2.finished_at, Some(SimTime::from_millis(15)));
        assert_eq!(net.now(), SimTime::from_millis(20));
    }

    #[test]
    fn queued_deliveries_pop_in_timestamp_order() {
        let mut net: SimNetwork<Msg> = SimNetwork::with_latency(LatencyModel::uniform(
            SimTime::from_micros(100),
            SimTime::from_millis(50),
            1234,
        ));
        let a = net.add_peer();
        let b = net.add_peer();
        // Independent ops: each message departs its own op's frontier (t=0)
        // with a random latency, so queue order != send order.
        let ops: Vec<_> = (0..32).map(|i| net.begin_op(&format!("op{i}"))).collect();
        for op in &ops {
            net.send(*op, a, b, Msg::Hello).unwrap();
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some(result) = net.deliver_next() {
            let env = result.unwrap();
            assert!(
                env.deliver_at >= last,
                "event queue went backwards: {} after {}",
                env.deliver_at,
                last
            );
            last = env.deliver_at;
            seen += 1;
        }
        assert_eq!(seen, 32);
        assert_eq!(net.now(), last.max(SimTime::ZERO));
    }

    #[test]
    fn notifications_extend_completion_but_not_the_frontier() {
        let mut net: SimNetwork<Msg> =
            SimNetwork::with_latency(LatencyModel::constant(SimTime::from_millis(10)));
        let a = net.add_peer();
        let b = net.add_peer();
        let c = net.add_peer();
        let op = net.begin_op("broadcast");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.deliver_next().unwrap().unwrap();
        // Three parallel notifications from the frontier (10ms): each lands
        // at 20ms without pushing the frontier.
        for target in [a, b, c] {
            net.count_message(op, "notify", b, target);
        }
        assert_eq!(
            net.stats().op_frontier(op.id),
            Some(SimTime::from_millis(10))
        );
        net.finish_op(op);
        assert_eq!(
            net.stats().op(op.id).unwrap().latency(),
            Some(SimTime::from_millis(20))
        );
    }

    #[test]
    fn next_delivery_at_peeks_the_earliest_event() {
        let (mut net, a, b) = two_peer_net();
        assert_eq!(net.next_delivery_at(), None);
        let op = net.begin_op("peek");
        net.send(op, a, b, Msg::Hello).unwrap();
        assert_eq!(net.next_delivery_at(), Some(SimTime::ZERO));
    }

    fn regional_model(seed: u64) -> LatencyModel {
        LatencyModel::regional(
            RegionMap::new(4, 0xBA70),
            LatencyModel::log_normal(SimTime::from_millis(5), 0.5, seed),
            LatencyModel::log_normal(SimTime::from_millis(60), 0.5, seed ^ 1),
            Vec::new(),
        )
    }

    #[test]
    fn regional_model_shards_the_queue_by_region() {
        let mut net: SimNetwork<Msg> = SimNetwork::with_latency(regional_model(5));
        assert_eq!(net.shard_count(), 4);
        let peers: Vec<_> = (0..32).map(|_| net.add_peer()).collect();
        let ops: Vec<_> = (0..8).map(|i| net.begin_op(&format!("op{i}"))).collect();
        for (i, op) in ops.iter().enumerate() {
            for j in 0..8 {
                let from = peers[(i * 5 + j) % peers.len()];
                let to = peers[(j * 11 + i) % peers.len()];
                net.send(*op, from, to, Msg::Hello).unwrap();
            }
        }
        assert_eq!(net.pending(), 64);
        // The sharded queue still pops in global (deliver_at, seq) order.
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some(result) = net.deliver_next() {
            let env = result.unwrap();
            assert!(env.deliver_at >= last, "sharded queue went backwards");
            last = env.deliver_at;
            seen += 1;
        }
        assert_eq!(seen, 64);
    }

    #[test]
    fn sharded_and_single_queue_deliver_identically() {
        // The same seeded traffic through a sharded and a (forced) single
        // queue: delivery order and payload attribution must be identical,
        // because the sharded pop selects the global (deliver_at, seq) min.
        let run = |shard: bool| {
            let mut net: SimNetwork<Msg> = SimNetwork::with_latency(regional_model(9));
            if !shard {
                // Collapse to a single heap *after* construction: same
                // latency streams, different queue layout.
                let model = net.latency_model().clone();
                net.queue = EventQueue::default();
                net.latency = model;
            }
            let peers: Vec<_> = (0..24).map(|_| net.add_peer()).collect();
            let ops: Vec<_> = (0..6).map(|i| net.begin_op(&format!("op{i}"))).collect();
            for (i, op) in ops.iter().enumerate() {
                for j in 0..10 {
                    let from = peers[(i * 7 + j * 3) % peers.len()];
                    let to = peers[(i + j * 5) % peers.len()];
                    net.send(*op, from, to, Msg::Hello).unwrap();
                }
            }
            let mut order = Vec::new();
            while let Some(result) = net.deliver_next() {
                let env = result.unwrap();
                order.push((env.deliver_at, env.from, env.to));
            }
            order
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn inter_region_frontier_is_the_earliest_cross_region_event() {
        let map = RegionMap::new(4, 0xBA70);
        let mut net: SimNetwork<Msg> = SimNetwork::with_latency(LatencyModel::regional(
            map,
            LatencyModel::constant(SimTime::from_millis(1)),
            LatencyModel::constant(SimTime::from_millis(40)),
            Vec::new(),
        ));
        let peers: Vec<_> = (0..32).map(|_| net.add_peer()).collect();
        let same = |a: &PeerId, b: &PeerId| map.same_region(*a, *b);
        let intra_pair = peers
            .iter()
            .flat_map(|a| peers.iter().map(move |b| (a, b)))
            .find(|(a, b)| a != b && same(a, b))
            .unwrap();
        let inter_pair = peers
            .iter()
            .flat_map(|a| peers.iter().map(move |b| (a, b)))
            .find(|(a, b)| !same(a, b))
            .unwrap();
        // No cross-region traffic: shards are fully independent.
        let op = net.begin_op("intra");
        net.send(op, *intra_pair.0, *intra_pair.1, Msg::Hello)
            .unwrap();
        assert_eq!(net.inter_region_frontier(), None);
        // A cross-region send closes the window at its delivery time.
        let op2 = net.begin_op("inter");
        net.send(op2, *inter_pair.0, *inter_pair.1, Msg::World)
            .unwrap();
        assert_eq!(net.inter_region_frontier(), Some(SimTime::from_millis(40)));
        // The barrier never precedes any locally deliverable event's bound:
        // the intra event (1ms) is safe to run before the 40ms frontier.
        assert_eq!(net.next_delivery_at(), Some(SimTime::from_millis(1)));
        net.deliver_next().unwrap().unwrap();
        net.deliver_next().unwrap().unwrap();
        assert_eq!(net.inter_region_frontier(), None);
    }

    #[test]
    fn swapping_models_restructures_the_queue_and_keeps_pending_events() {
        let (mut net, a, b) = two_peer_net();
        assert_eq!(net.shard_count(), 1);
        let op = net.begin_op("swap");
        net.send(op, a, b, Msg::Hello).unwrap();
        net.send(op, b, a, Msg::World).unwrap();
        net.set_latency_model(regional_model(3));
        assert_eq!(net.shard_count(), 4);
        assert_eq!(net.pending(), 2, "pending events survive re-sharding");
        let first = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.payload, Msg::Hello);
        net.set_latency_model(LatencyModel::zero());
        assert_eq!(net.shard_count(), 1);
        assert_eq!(net.pending(), 1);
        let second = net.deliver_next().unwrap().unwrap();
        assert_eq!(second.payload, Msg::World);
    }
}
