//! Concurrent serve mode: immutable routing/ownership snapshots and the
//! lock-free read path over them.
//!
//! The discrete-event engine answers one query at a time behind the virtual
//! clock; a real deployment answers thousands concurrently.  This module is
//! the bridge: an overlay exports its current routing/ownership state as an
//! immutable [`RoutingSnapshot`] — dense arrays of per-peer key ranges, link
//! tables, item indexes and replica sets — which any number of OS threads
//! can then query without locks, allocation, or event-queue traffic.
//!
//! Structural operations (join/leave/balance/repair) never mutate a
//! published snapshot.  Instead the owner rebuilds one and *publishes* it
//! through a [`SnapshotCell`]; readers hold a [`SnapshotReader`] whose
//! cached `Arc` is refreshed only when the cell's version counter changes
//! (a single relaxed-acquire atomic load on the fast path).  A reader that
//! has not yet refreshed keeps answering from its stale snapshot — answers
//! are always internally consistent with *one* version, never a mix.
//!
//! The per-query cost model is deliberately minimal: owner resolution is a
//! binary search over the slot partition (or the hashed ring), matches come
//! from a prefix-summed item index, and hop counts are produced by greedy
//! routing over the snapshot's link tables so the reports keep the
//! per-[`LinkKind`] anatomy of the traced event engine without paying for
//! it per message.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::LinkKind;

/// How exact queries map a key to its owning slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactPlacement {
    /// Slots partition a contiguous key domain in key order; the owner of a
    /// key is the slot whose `[low, high)` range contains it (BATON, the
    /// multiway tree, D3-Tree).
    DomainPartition,
    /// Keys are hashed onto a ring of `domain.1` identifiers (SplitMix64
    /// finalizer, the same mix Chord's `ChordId::hash` applies); the owner
    /// is the first slot whose identifier is `>=` the hash, wrapping to
    /// slot 0 (Chord successor placement).
    HashedRing,
}

/// Outcome class of one snapshot-served query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeStatus {
    /// Answered by the owning slot.
    Ok,
    /// The owner is marked dead; a live replica answered instead.
    Failover,
    /// The owner is dead and no replica is alive.
    Unavailable,
    /// The key lies outside the snapshot's domain (partition overlays
    /// reject out-of-domain exact keys, mirroring the routed engines).
    Rejected,
    /// The overlay cannot answer this query class (range queries on a
    /// hashed ring).
    Unsupported,
}

/// One snapshot-served answer: the match count plus the read path's cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeAnswer {
    /// Number of matching stored values — byte-identical to the routed
    /// engine's `matches` for the same overlay state.
    pub matches: u64,
    /// Greedy routing hops charged to reach the owner.
    pub hops: u32,
    /// Slots swept by a range query (0 for exact queries and empty clamps).
    pub slots: u32,
    /// Outcome class.
    pub status: ServeStatus,
}

/// Per-worker query counters, merged deterministically after a run.
///
/// Every field is an integer accumulated in query order, so merging worker
/// counters in canonical worker order (or any order — all sums and XORs
/// commute) produces identical totals at any thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Queries admitted (including rejected/unavailable ones).
    pub queries: u64,
    /// Sum of `matches` over all answered queries.
    pub matches: u64,
    /// Total routing hops.
    pub hops: u64,
    /// Routing hops split by the link kind they travelled, indexed by the
    /// position of the kind in [`LinkKind::ALL`].
    pub hops_by_kind: [u64; 11],
    /// Slots swept by range queries.
    pub slots_swept: u64,
    /// Queries answered by a replica because the owner was dead.
    pub failover: u64,
    /// Queries that found neither the owner nor any replica alive.
    pub unavailable: u64,
    /// Queries rejected (out-of-domain key) or unsupported (range on a
    /// ring).
    pub rejected: u64,
    /// Order-independent digest folding every `(matches, hops)` pair; equal
    /// digests across thread counts pin work-for-work determinism.
    pub checksum: u64,
}

impl ServeCounters {
    /// Folds one answer into the counters.
    #[inline]
    pub fn record(&mut self, answer: ServeAnswer) {
        self.queries += 1;
        self.matches += answer.matches;
        self.hops += u64::from(answer.hops);
        self.slots_swept += u64::from(answer.slots);
        match answer.status {
            ServeStatus::Ok => {}
            ServeStatus::Failover => self.failover += 1,
            ServeStatus::Unavailable => self.unavailable += 1,
            ServeStatus::Rejected | ServeStatus::Unsupported => self.rejected += 1,
        }
        // SplitMix64-style fold; XOR keeps the merge order-independent.
        let mut z = answer
            .matches
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(answer.hops))
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        self.checksum ^= z;
    }

    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &ServeCounters) {
        self.queries += other.queries;
        self.matches += other.matches;
        self.hops += other.hops;
        for (a, b) in self.hops_by_kind.iter_mut().zip(other.hops_by_kind) {
            *a += b;
        }
        self.slots_swept += other.slots_swept;
        self.failover += other.failover;
        self.unavailable += other.unavailable;
        self.rejected += other.rejected;
        self.checksum ^= other.checksum;
    }

    /// Mean routing hops per admitted query.
    pub fn mean_hops(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hops as f64 / self.queries as f64
        }
    }
}

/// An immutable, versioned routing/ownership snapshot of one overlay.
///
/// Slots are the overlay's peers in key order (partition overlays) or ring
/// identifier order (hashed ring).  All per-slot data lives in dense
/// flat/CSR arrays, so a snapshot is a handful of contiguous allocations
/// that any number of threads can read concurrently.
#[derive(Clone, Debug)]
pub struct RoutingSnapshot {
    version: u64,
    overlay: String,
    placement: ExactPlacement,
    range_supported: bool,
    /// `[low, high)` key domain (partition) or `[0, ring_size)` (ring).
    domain: (u64, u64),
    /// Peer address of each slot ([`crate::PeerId::raw`]-compatible).
    slot_peer: Vec<u32>,
    /// Exclusive range high of each slot (partition), or the slot's ring
    /// identifier (ring); strictly increasing either way.
    slot_high: Vec<u64>,
    /// Liveness of each slot's peer at snapshot time.
    slot_alive: Vec<bool>,
    /// CSR offsets into `item_key`/`item_cum` (`len == slots + 1`).
    item_off: Vec<u32>,
    /// Distinct stored keys per slot, sorted within each slot segment; the
    /// concatenation over partition slots is globally sorted.
    item_key: Vec<u64>,
    /// Prefix sums of per-key value counts (`len == item_key.len() + 1`):
    /// the count stored under `item_key[i]` is `item_cum[i+1]-item_cum[i]`.
    item_cum: Vec<u64>,
    /// CSR offsets into the link arrays (`len == slots + 1`).
    link_off: Vec<u32>,
    /// Link targets, as slot indices.
    link_target: Vec<u32>,
    /// Link classes, parallel to `link_target`.
    link_kind: Vec<LinkKind>,
    /// CSR offsets into `repl_target` (`len == slots + 1`).
    repl_off: Vec<u32>,
    /// Replica slots per slot, in placement preference order.
    repl_target: Vec<u32>,
}

/// Hashes a key onto a ring of `ring` identifiers — the SplitMix64
/// finalizer, bit-identical to Chord's `ChordId::hash` when `ring == 2^32`.
#[inline]
pub fn ring_hash(key: u64, ring: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % ring
}

impl RoutingSnapshot {
    /// The version assigned at publication (0 before the first publish).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Name of the overlay this snapshot was extracted from.
    pub fn overlay(&self) -> &str {
        &self.overlay
    }

    /// Number of slots (peers) in the snapshot.
    pub fn slots(&self) -> usize {
        self.slot_peer.len()
    }

    /// `true` if the snapshot can answer range queries.
    pub fn range_supported(&self) -> bool {
        self.range_supported
    }

    /// The snapshot's key domain `[low, high)` (ring size for hashed
    /// placement).
    pub fn domain(&self) -> (u64, u64) {
        self.domain
    }

    /// How exact queries resolve their owner.
    pub fn placement(&self) -> ExactPlacement {
        self.placement
    }

    /// Peer address of `slot`.
    pub fn peer_of(&self, slot: usize) -> u32 {
        self.slot_peer[slot]
    }

    /// Liveness of `slot` at snapshot time.
    pub fn alive(&self, slot: usize) -> bool {
        self.slot_alive[slot]
    }

    /// Total stored values across all slots.
    pub fn total_items(&self) -> u64 {
        *self.item_cum.last().unwrap_or(&0)
    }

    /// Approximate resident bytes of the snapshot's arrays.
    pub fn estimated_bytes(&self) -> u64 {
        (self.slot_peer.len() * 4
            + self.slot_high.len() * 8
            + self.slot_alive.len()
            + self.item_off.len() * 4
            + self.item_key.len() * 8
            + self.item_cum.len() * 8
            + self.link_off.len() * 4
            + self.link_target.len() * 4
            + self.link_kind.len()
            + self.repl_off.len() * 4
            + self.repl_target.len() * 4) as u64
    }

    /// The slot owning `key`, per the snapshot's placement, or `None` for
    /// an out-of-domain key on a partition (the routed engines reject
    /// those) or an empty snapshot.
    #[inline]
    pub fn owner_of(&self, key: u64) -> Option<usize> {
        if self.slot_peer.is_empty() {
            return None;
        }
        match self.placement {
            ExactPlacement::DomainPartition => {
                if key < self.domain.0 || key >= self.domain.1 {
                    return None;
                }
                // First slot whose exclusive high exceeds the key.
                Some(self.slot_high.partition_point(|&h| h <= key))
            }
            ExactPlacement::HashedRing => {
                let id = ring_hash(key, self.domain.1.max(1));
                // Successor placement: first slot id >= hash, wrapping.
                let at = self.slot_high.partition_point(|&h| h < id);
                Some(if at == self.slot_high.len() { 0 } else { at })
            }
        }
    }

    /// Values stored under `key` at `slot` (the key is pre-mapped for ring
    /// placement).
    #[inline]
    fn count_at(&self, slot: usize, stored_key: u64) -> u64 {
        let lo = self.item_off[slot] as usize;
        let hi = self.item_off[slot + 1] as usize;
        let seg = &self.item_key[lo..hi];
        match seg.binary_search(&stored_key) {
            Ok(i) => self.item_cum[lo + i + 1] - self.item_cum[lo + i],
            Err(_) => 0,
        }
    }

    /// Values stored at `slot` with keys in `[low, high)`.
    #[inline]
    fn count_in(&self, slot: usize, low: u64, high: u64) -> u64 {
        let off = self.item_off[slot] as usize;
        let seg = &self.item_key[off..self.item_off[slot + 1] as usize];
        let a = off + seg.partition_point(|&k| k < low);
        let b = off + seg.partition_point(|&k| k < high);
        self.item_cum[b] - self.item_cum[a]
    }

    /// Index distance from `a` to `b` under the placement's geometry:
    /// absolute distance on a partition, forward (clockwise) distance on a
    /// ring.
    #[inline]
    fn distance(&self, a: usize, b: usize) -> u64 {
        match self.placement {
            ExactPlacement::DomainPartition => (a as i64 - b as i64).unsigned_abs(),
            ExactPlacement::HashedRing => {
                let n = self.slot_peer.len() as u64;
                (b as u64 + n - a as u64) % n
            }
        }
    }

    /// Greedy routing from `from` to `to` over the snapshot's link tables:
    /// each hop takes the link that most shrinks the remaining distance and
    /// is charged to its [`LinkKind`]; when no link improves, the reader
    /// jumps straight to the target for one `Other` hop (it has the full
    /// partition, a luxury a real peer pays for with its own link walk).
    #[inline]
    fn route(&self, from: usize, to: usize, counters: &mut ServeCounters) -> u32 {
        let mut current = from;
        let mut hops = 0u32;
        while current != to {
            let remaining = self.distance(current, to);
            let mut best: Option<(u64, usize, LinkKind)> = None;
            let lo = self.link_off[current] as usize;
            let hi = self.link_off[current + 1] as usize;
            for i in lo..hi {
                let target = self.link_target[i] as usize;
                let d = self.distance(target, to);
                if d < remaining && best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, target, self.link_kind[i]));
                }
            }
            match best {
                Some((_, next, kind)) => {
                    current = next;
                    counters.hops_by_kind[kind as usize] += 1;
                }
                None => {
                    current = to;
                    counters.hops_by_kind[LinkKind::Other as usize] += 1;
                }
            }
            hops += 1;
        }
        hops
    }

    /// Resolves a dead owner to a live replica: `Ok` when the owner is
    /// alive, `Failover` when a replica answers, `Unavailable` otherwise.
    #[inline]
    fn liveness(&self, slot: usize) -> ServeStatus {
        if self.slot_alive[slot] {
            return ServeStatus::Ok;
        }
        let lo = self.repl_off[slot] as usize;
        let hi = self.repl_off[slot + 1] as usize;
        for i in lo..hi {
            if self.slot_alive[self.repl_target[i] as usize] {
                return ServeStatus::Failover;
            }
        }
        ServeStatus::Unavailable
    }

    /// Answers an exact-match query for `key` from the snapshot, starting
    /// the routing walk at `start_hint % slots`.  Matches are
    /// byte-identical to the routed engine's answer for the same overlay
    /// state; zero allocation.
    #[inline]
    pub fn exact(&self, key: u64, start_hint: u64, counters: &mut ServeCounters) -> ServeAnswer {
        let mut answer = ServeAnswer {
            matches: 0,
            hops: 0,
            slots: 0,
            status: ServeStatus::Ok,
        };
        let Some(owner) = self.owner_of(key) else {
            answer.status = if self.slot_peer.is_empty() {
                ServeStatus::Unavailable
            } else {
                ServeStatus::Rejected
            };
            counters.record(answer);
            return answer;
        };
        let start = (start_hint % self.slot_peer.len() as u64) as usize;
        answer.hops = self.route(start, owner, counters);
        answer.status = self.liveness(owner);
        if answer.status == ServeStatus::Failover {
            // The replica holds a copy of the owner's slice; one extra hop
            // reaches it.
            answer.hops += 1;
            counters.hops_by_kind[LinkKind::Other as usize] += 1;
        }
        if answer.status != ServeStatus::Unavailable {
            let stored = match self.placement {
                ExactPlacement::DomainPartition => key,
                ExactPlacement::HashedRing => ring_hash(key, self.domain.1.max(1)),
            };
            answer.matches = self.count_at(owner, stored);
        }
        counters.record(answer);
        answer
    }

    /// Answers a range query for `[low, high)` from the snapshot: clamp to
    /// the domain, route to the owner of the clamped low, then sweep right
    /// across the partition until the range is covered — the same
    /// owner-then-adjacent sweep all three range-capable engines execute,
    /// so matches byte-agree.  An empty clamp answers zero without routing.
    #[inline]
    pub fn range(
        &self,
        low: u64,
        high: u64,
        start_hint: u64,
        counters: &mut ServeCounters,
    ) -> ServeAnswer {
        let mut answer = ServeAnswer {
            matches: 0,
            hops: 0,
            slots: 0,
            status: ServeStatus::Ok,
        };
        if !self.range_supported {
            answer.status = ServeStatus::Unsupported;
            counters.record(answer);
            return answer;
        }
        if self.slot_peer.is_empty() {
            answer.status = ServeStatus::Unavailable;
            counters.record(answer);
            return answer;
        }
        let lo = low.max(self.domain.0);
        let hi = high.min(self.domain.1);
        if lo >= hi {
            counters.record(answer);
            return answer;
        }
        let owner = self.slot_high.partition_point(|&h| h <= lo);
        let start = (start_hint % self.slot_peer.len() as u64) as usize;
        answer.hops = self.route(start, owner, counters);
        let mut slot = owner;
        loop {
            answer.slots += 1;
            match self.liveness(slot) {
                ServeStatus::Failover if answer.status == ServeStatus::Ok => {
                    answer.status = ServeStatus::Failover;
                }
                ServeStatus::Unavailable => answer.status = ServeStatus::Unavailable,
                _ => {}
            }
            answer.matches += self.count_in(slot, lo, hi);
            if self.slot_high[slot] >= hi || slot + 1 == self.slot_peer.len() {
                break;
            }
            slot += 1;
            answer.hops += 1;
            counters.hops_by_kind[LinkKind::Adjacent as usize] += 1;
        }
        counters.record(answer);
        answer
    }
}

/// Builds a [`RoutingSnapshot`] slot by slot.
///
/// Extraction order matters: partition overlays must push slots in key
/// order, ring overlays in ascending identifier order.  Items must arrive
/// sorted within each slot.  Links and replicas are resolved to slot
/// indices through [`SnapshotBuilder::slot_of`] after all slots are pushed.
#[derive(Debug)]
pub struct SnapshotBuilder {
    snapshot: RoutingSnapshot,
    links: Vec<Vec<(u32, LinkKind)>>,
    replicas: Vec<Vec<u32>>,
}

impl SnapshotBuilder {
    /// Starts a snapshot of `overlay` with the given placement and domain.
    pub fn new(
        overlay: &str,
        placement: ExactPlacement,
        range_supported: bool,
        domain: (u64, u64),
    ) -> Self {
        Self {
            snapshot: RoutingSnapshot {
                version: 0,
                overlay: overlay.to_string(),
                placement,
                range_supported,
                domain,
                slot_peer: Vec::new(),
                slot_high: Vec::new(),
                slot_alive: Vec::new(),
                item_off: vec![0],
                item_key: Vec::new(),
                item_cum: vec![0],
                link_off: Vec::new(),
                link_target: Vec::new(),
                link_kind: Vec::new(),
                repl_off: Vec::new(),
                repl_target: Vec::new(),
            },
            links: Vec::new(),
            replicas: Vec::new(),
        }
    }

    /// Appends a slot for `peer` whose range ends at (exclusive) `high` —
    /// or whose ring identifier is `high` under hashed placement.  Returns
    /// the slot index.
    pub fn push_slot(&mut self, peer: u32, high: u64, alive: bool) -> usize {
        debug_assert!(
            self.snapshot
                .slot_high
                .last()
                .is_none_or(|&prev| prev < high),
            "slots must be pushed in ascending order"
        );
        self.snapshot.slot_peer.push(peer);
        self.snapshot.slot_high.push(high);
        self.snapshot.slot_alive.push(alive);
        self.links.push(Vec::new());
        self.replicas.push(Vec::new());
        self.snapshot.slot_peer.len() - 1
    }

    /// Appends one distinct stored key (with its value count) to the most
    /// recently pushed slot.  Keys must arrive sorted per slot.
    pub fn push_item(&mut self, key: u64, count: u64) {
        debug_assert!(!self.snapshot.slot_peer.is_empty(), "push_slot first");
        debug_assert!(count > 0, "zero-count item");
        self.snapshot.item_key.push(key);
        let total = self.snapshot.item_cum.last().copied().unwrap_or(0);
        self.snapshot.item_cum.push(total + count);
    }

    /// Seals the most recently pushed slot's item segment.  Must be called
    /// once per slot, after its items.
    pub fn seal_slot(&mut self) {
        self.snapshot
            .item_off
            .push(self.snapshot.item_key.len() as u32);
    }

    /// The slot index a peer landed at, for link/replica resolution.
    pub fn slot_of(&self, peer: u32) -> Option<usize> {
        // Extraction-time only; a scan keeps the builder allocation-light
        // and extraction is O(N) slots anyway.
        self.snapshot.slot_peer.iter().position(|&p| p == peer)
    }

    /// Records a routing link from `slot` to `target` of class `kind`.
    pub fn link(&mut self, slot: usize, target: usize, kind: LinkKind) {
        if slot != target {
            self.links[slot].push((target as u32, kind));
        }
    }

    /// Records that `target` holds a replica of `slot`'s slice.
    pub fn replica(&mut self, slot: usize, target: usize) {
        if slot != target {
            self.replicas[slot].push(target as u32);
        }
    }

    /// Flattens the per-slot link/replica tables and returns the finished
    /// snapshot (version 0 until published through a [`SnapshotCell`]).
    pub fn finish(mut self) -> RoutingSnapshot {
        debug_assert_eq!(
            self.snapshot.item_off.len(),
            self.snapshot.slot_peer.len() + 1,
            "every slot must be sealed exactly once"
        );
        self.snapshot.link_off.push(0);
        for links in &self.links {
            for &(target, kind) in links {
                self.snapshot.link_target.push(target);
                self.snapshot.link_kind.push(kind);
            }
            self.snapshot
                .link_off
                .push(self.snapshot.link_target.len() as u32);
        }
        self.snapshot.repl_off.push(0);
        for replicas in &self.replicas {
            self.snapshot.repl_target.extend_from_slice(replicas);
            self.snapshot
                .repl_off
                .push(self.snapshot.repl_target.len() as u32);
        }
        self.snapshot
    }
}

/// The swap point between structural writers and lock-free readers.
///
/// A writer that commits a structural change rebuilds the snapshot and
/// [`publish`](SnapshotCell::publish)es it; the cell stamps it with the
/// next version and swaps the shared `Arc` under a mutex that only writers
/// and *refreshing* readers ever touch.  Steady-state readers poll the
/// version with one atomic acquire-load per batch and skip the mutex
/// entirely while it is unchanged — the lock-free fast path batched
/// admission amortizes.
#[derive(Debug)]
pub struct SnapshotCell {
    version: AtomicU64,
    current: Mutex<Arc<RoutingSnapshot>>,
}

impl SnapshotCell {
    /// Creates a cell publishing `snapshot` as version 1.
    pub fn new(mut snapshot: RoutingSnapshot) -> Self {
        snapshot.version = 1;
        Self {
            version: AtomicU64::new(1),
            current: Mutex::new(Arc::new(snapshot)),
        }
    }

    /// The currently published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot, stamping it with the next version, and
    /// returns that version.  In-flight readers keep their old `Arc` and
    /// finish their batch on it; they observe the new version at their next
    /// refresh.
    pub fn publish(&self, mut snapshot: RoutingSnapshot) -> u64 {
        let mut current = self.current.lock().expect("snapshot cell poisoned");
        let next = self.version.load(Ordering::Relaxed) + 1;
        snapshot.version = next;
        *current = Arc::new(snapshot);
        // Published only after the Arc swap, so a reader that observes the
        // new version and then locks is guaranteed to see the new Arc.
        self.version.store(next, Ordering::Release);
        next
    }

    /// Clones the current snapshot handle (locks; readers should prefer a
    /// [`SnapshotReader`]).
    pub fn load(&self) -> Arc<RoutingSnapshot> {
        self.current.lock().expect("snapshot cell poisoned").clone()
    }
}

/// A per-worker view of a [`SnapshotCell`]: caches the `Arc` and refreshes
/// it only when the published version moves, so steady-state reads touch no
/// lock and perform no allocation.
#[derive(Debug)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cached: Arc<RoutingSnapshot>,
    seen: u64,
    /// Number of refreshes that actually swapped the cached snapshot.
    pub refreshes: u64,
}

impl SnapshotReader {
    /// Attaches a reader to `cell`.
    pub fn new(cell: Arc<SnapshotCell>) -> Self {
        let cached = cell.load();
        let seen = cached.version();
        Self {
            cell,
            cached,
            seen,
            refreshes: 0,
        }
    }

    /// Refreshes the cached snapshot if a newer version was published.
    /// Call once per batch: one atomic load when nothing changed.
    #[inline]
    pub fn refresh(&mut self) {
        let published = self.cell.version.load(Ordering::Acquire);
        if published != self.seen {
            let current = self.cell.current.lock().expect("snapshot cell poisoned");
            self.cached = current.clone();
            self.seen = self.cached.version();
            self.refreshes += 1;
        }
    }

    /// The snapshot this reader currently answers from.
    #[inline]
    pub fn snapshot(&self) -> &RoutingSnapshot {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four slots over [0, 100): ranges [0,25) [25,50) [50,75) [75,100),
    /// a chain of adjacent links, one item per slot.
    fn toy() -> RoutingSnapshot {
        let mut b = SnapshotBuilder::new("toy", ExactPlacement::DomainPartition, true, (0, 100));
        for (i, high) in [25u64, 50, 75, 100].into_iter().enumerate() {
            b.push_slot(i as u32, high, true);
            b.push_item(i as u64 * 25 + 10, (i + 1) as u64);
            b.seal_slot();
        }
        for i in 0..4usize {
            if i > 0 {
                b.link(i, i - 1, LinkKind::Adjacent);
            }
            if i < 3 {
                b.link(i, i + 1, LinkKind::Adjacent);
            }
        }
        b.finish()
    }

    #[test]
    fn exact_resolves_owner_and_counts() {
        let snap = toy();
        let mut c = ServeCounters::default();
        assert_eq!(snap.owner_of(0), Some(0));
        assert_eq!(snap.owner_of(24), Some(0));
        assert_eq!(snap.owner_of(25), Some(1));
        assert_eq!(snap.owner_of(99), Some(3));
        assert_eq!(snap.owner_of(100), None);
        let hit = snap.exact(60, 0, &mut c);
        assert_eq!((hit.matches, hit.status), (3, ServeStatus::Ok));
        assert_eq!(hit.hops, 2, "adjacent chain from slot 0 to slot 2");
        let miss = snap.exact(61, 0, &mut c);
        assert_eq!(miss.matches, 0);
        let rejected = snap.exact(100, 0, &mut c);
        assert_eq!(rejected.status, ServeStatus::Rejected);
        assert_eq!(c.queries, 3);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.hops_by_kind[LinkKind::Adjacent as usize], 4);
    }

    #[test]
    fn range_sweeps_and_clamps() {
        let snap = toy();
        let mut c = ServeCounters::default();
        // Covers items 10 (1), 35 (2), 60 (3).
        let a = snap.range(5, 70, 0, &mut c);
        assert_eq!((a.matches, a.slots), (6, 3));
        // Out-of-domain clamp is empty: zero everything.
        let empty = snap.range(200, 300, 0, &mut c);
        assert_eq!((empty.matches, empty.slots, empty.hops), (0, 0, 0));
        // Whole domain.
        let all = snap.range(0, 100, 3, &mut c);
        assert_eq!((all.matches, all.slots), (10, 4));
    }

    #[test]
    fn ring_placement_wraps_to_successor() {
        let mut b = SnapshotBuilder::new("ring", ExactPlacement::HashedRing, false, (0, 1 << 32));
        b.push_slot(7, 1_000, true);
        b.seal_slot();
        b.push_slot(9, 3_000_000_000, true);
        b.seal_slot();
        let snap = b.finish();
        let mut c = ServeCounters::default();
        assert_eq!(
            snap.range(1, 10, 0, &mut c).status,
            ServeStatus::Unsupported
        );
        // Every key owns *some* slot; ids above the top wrap to slot 0.
        for key in 0..50u64 {
            let owner = snap.owner_of(key).unwrap();
            let id = ring_hash(key, 1 << 32);
            let expect = if id <= 1_000 || id > 3_000_000_000 {
                0
            } else {
                1
            };
            assert_eq!(owner, expect, "key {key} id {id}");
        }
    }

    #[test]
    fn dead_owner_fails_over_then_unavailable() {
        let mut b = SnapshotBuilder::new("t", ExactPlacement::DomainPartition, true, (0, 100));
        b.push_slot(0, 50, false);
        b.push_item(10, 4);
        b.seal_slot();
        b.push_slot(1, 100, true);
        b.seal_slot();
        b.replica(0, 1);
        let snap = b.finish();
        let mut c = ServeCounters::default();
        let a = snap.exact(10, 1, &mut c);
        assert_eq!((a.status, a.matches), (ServeStatus::Failover, 4));

        let mut b = SnapshotBuilder::new("t", ExactPlacement::DomainPartition, true, (0, 100));
        b.push_slot(0, 50, false);
        b.push_item(10, 4);
        b.seal_slot();
        b.push_slot(1, 100, true);
        b.seal_slot();
        let snap = b.finish();
        let a = snap.exact(10, 1, &mut c);
        assert_eq!((a.status, a.matches), (ServeStatus::Unavailable, 0));
        assert_eq!(c.failover, 1);
        assert_eq!(c.unavailable, 1);
    }

    #[test]
    fn cell_publishes_versions_and_readers_refresh_lazily() {
        let cell = Arc::new(SnapshotCell::new(toy()));
        let mut reader = SnapshotReader::new(cell.clone());
        assert_eq!(reader.snapshot().version(), 1);
        reader.refresh();
        assert_eq!(reader.refreshes, 0, "no publish, no refresh");

        let mut b = SnapshotBuilder::new("toy", ExactPlacement::DomainPartition, true, (0, 100));
        b.push_slot(0, 100, true);
        b.push_item(42, 9);
        b.seal_slot();
        assert_eq!(cell.publish(b.finish()), 2);

        // The stale reader still answers from version 1 (never mixes).
        let mut c = ServeCounters::default();
        assert_eq!(reader.snapshot().version(), 1);
        assert_eq!(reader.snapshot().exact(60, 0, &mut c).matches, 3);
        reader.refresh();
        assert_eq!(reader.snapshot().version(), 2);
        assert_eq!(reader.snapshot().exact(42, 0, &mut c).matches, 9);
        assert_eq!(reader.refreshes, 1);
    }

    #[test]
    fn counters_merge_is_order_independent() {
        let snap = toy();
        let mut serial = ServeCounters::default();
        for key in 0..100 {
            snap.exact(key, key, &mut serial);
        }
        let (mut even, mut odd) = (ServeCounters::default(), ServeCounters::default());
        for key in 0..100 {
            let c = if key % 2 == 0 { &mut even } else { &mut odd };
            snap.exact(key, key, c);
        }
        let mut merged = ServeCounters::default();
        merged.merge(&odd);
        merged.merge(&even);
        assert_eq!(merged, serial);
    }
}
