//! Opt-in route recorder: a bounded flight recorder of per-operation span
//! trees.
//!
//! The paper's headline claims are *per-hop* claims — Theorems 2/3 bound
//! exact-match and range routing at O(log N) hops — yet [`MessageStats`]
//! only aggregates.  When tracing is enabled
//! ([`SimNetwork::set_trace`](crate::network::SimNetwork::set_trace)), every
//! sampled operation records a [`Span`]: its class label, issue/finish
//! times, and one [`HopRecord`] per message with the link class that carried
//! it ([`LinkKind`], tagged by each overlay at its send sites), the virtual
//! send/arrive instants, whether the destination was alive, and whether the
//! hop was part of a failover detour.
//!
//! The recorder is a **ring buffer**: finished spans beyond
//! [`TraceConfig::capacity`] evict the oldest, so a full-profile run holds
//! O(capacity) trace state no matter how many operations it dispatches.
//! When tracing is disabled (the default) no span is allocated and every
//! probe is a `None` check — all committed fixtures are byte-identical
//! either way, since tracing never touches the statistics or the event
//! queue.
//!
//! [`MessageStats`]: crate::stats::MessageStats

use std::collections::VecDeque;

use crate::peer::PeerId;
use crate::stats::OpId;
use crate::time::SimTime;

/// Upper bound on simultaneously open (begun but unfinished) sampled spans.
///
/// Protocols finish every operation they begin, even on error paths, so this
/// exists purely as a leak guard: if an op somehow never finishes, its span
/// is force-retired once this many newer spans are open.
const MAX_OPEN_SPANS: usize = 1024;

/// The closed taxonomy of overlay link classes a routed hop can travel.
///
/// Each overlay tags its send sites with the kinds it maintains: BATON
/// `Parent`/`Child`/`Adjacent`/`RoutingTable` (paper §II links), Chord
/// `Successor`/`Finger`, the multiway tree `Parent`/`Child` on its
/// up-then-down walk plus `Neighbor` on range sweeps, and the D3-Tree
/// `Backbone` (LCA climb/descent) and `Bucket` (in-bucket walk).  `Notify`
/// marks fire-and-forget maintenance traffic
/// ([`count_message`](crate::network::SimNetwork::count_message)); `Other`
/// is the untagged default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkKind {
    /// BATON/multiway-tree parent link.
    Parent,
    /// BATON/multiway-tree child link.
    Child,
    /// BATON in-order adjacent link.
    Adjacent,
    /// BATON left/right routing-table entry (the O(log N) side links).
    RoutingTable,
    /// Chord ring successor link.
    Successor,
    /// Chord finger-table entry.
    Finger,
    /// Multiway-tree in-order neighbour link (range sweeps).
    Neighbor,
    /// D3-Tree backbone hop (LCA climb or descent).
    Backbone,
    /// D3-Tree in-bucket walk hop.
    Bucket,
    /// Fire-and-forget maintenance notification.
    Notify,
    /// A hop whose send site carries no tag.
    Other,
}

impl LinkKind {
    /// Every kind, in canonical rendering order.
    pub const ALL: [LinkKind; 11] = [
        LinkKind::Parent,
        LinkKind::Child,
        LinkKind::Adjacent,
        LinkKind::RoutingTable,
        LinkKind::Successor,
        LinkKind::Finger,
        LinkKind::Neighbor,
        LinkKind::Backbone,
        LinkKind::Bucket,
        LinkKind::Notify,
        LinkKind::Other,
    ];

    /// Stable lower-case name used in JSONL exports and perf rows.
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Parent => "parent",
            LinkKind::Child => "child",
            LinkKind::Adjacent => "adjacent",
            LinkKind::RoutingTable => "routing_table",
            LinkKind::Successor => "successor",
            LinkKind::Finger => "finger",
            LinkKind::Neighbor => "neighbor",
            LinkKind::Backbone => "backbone",
            LinkKind::Bucket => "bucket",
            LinkKind::Notify => "notify",
            LinkKind::Other => "other",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for a string outside the
    /// closed set (which is what the JSONL schema validator rejects).
    pub fn parse(name: &str) -> Option<LinkKind> {
        LinkKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Index of this kind within [`ALL`](Self::ALL).
    pub fn index(self) -> usize {
        LinkKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("ALL is exhaustive")
    }
}

/// Configuration of the route recorder.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum finished spans retained; older spans are evicted (counted by
    /// [`TraceBuffer::evicted`]).
    pub capacity: usize,
    /// Record every `sample`-th operation (1 = every operation).  Sampling
    /// is a deterministic modulus over the op counter, not a random draw,
    /// so traced runs stay reproducible.
    pub sample: u64,
}

impl TraceConfig {
    /// A recorder keeping up to `capacity` spans, sampling every op.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            sample: 1,
        }
    }

    /// Sets the sampling modulus (clamped to ≥ 1).
    pub fn with_sample(mut self, sample: u64) -> Self {
        self.sample = sample.max(1);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::new(4096)
    }
}

/// One recorded message of a traced operation.
#[derive(Clone, Debug)]
pub struct HopRecord {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Hop number the protocol assigned to the message (0 for
    /// notifications).
    pub hop: u32,
    /// Link class the hop travelled.
    pub kind: LinkKind,
    /// Protocol message kind (e.g. `"SEARCHEXACT"`).
    pub message: &'static str,
    /// Virtual instant the message left the sender (the op's frontier).
    pub sent_at: SimTime,
    /// Virtual instant the message lands at the destination.
    pub arrive_at: SimTime,
    /// `false` if the destination was dead when the message arrived.
    pub delivered: bool,
    /// `true` if the operation was already in failover-detour mode (it had
    /// bounced off at least one dead peer) when this hop was sent.
    pub detour: bool,
}

/// The full recorded trace of one operation.
#[derive(Clone, Debug)]
pub struct Span {
    /// Raw [`OpId`] value of the operation.
    pub op: u64,
    /// Operation class label (e.g. `"search.exact"`).
    pub class: String,
    /// Virtual time the operation was issued.
    pub started_at: SimTime,
    /// Virtual time the operation finished (`None` if force-retired while
    /// still open — see [`MAX_OPEN_SPANS`]).
    pub finished_at: Option<SimTime>,
    /// Every message of the operation, in send order.
    pub hops: Vec<HopRecord>,
}

impl Span {
    /// Messages recorded for this operation.
    pub fn message_count(&self) -> u64 {
        self.hops.len() as u64
    }

    /// Hops charged to the operation's failover detour: hops sent while in
    /// detour mode plus the bounce that opened it (mirrors
    /// [`OpStats::detour_messages`](crate::stats::OpStats::detour_messages)).
    pub fn detour_count(&self) -> u64 {
        let mut bounced = false;
        self.hops
            .iter()
            .filter(|h| {
                let charged = h.detour || bounced || !h.delivered;
                bounced |= !h.delivered;
                charged
            })
            .count() as u64
    }
}

/// Bounded ring buffer of finished [`Span`]s plus the open spans of
/// in-flight sampled operations.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    config: TraceConfig,
    /// Operations observed by `begin` (sampled or not).
    ops_seen: u64,
    /// Operations actually recorded.
    sampled: u64,
    /// Finished spans dropped to honour `capacity`.
    evicted: u64,
    open: Vec<(OpId, Span)>,
    done: VecDeque<Span>,
}

impl TraceBuffer {
    /// Creates an empty recorder.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            ops_seen: 0,
            sampled: 0,
            evicted: 0,
            open: Vec::new(),
            done: VecDeque::new(),
        }
    }

    /// The configuration the recorder was created with.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Observes a newly begun operation, opening a span for it if the
    /// sampling modulus selects it.
    pub(crate) fn begin(&mut self, op: OpId, class: &str, at: SimTime) {
        let selected = self.ops_seen.is_multiple_of(self.config.sample);
        self.ops_seen += 1;
        if !selected {
            return;
        }
        self.sampled += 1;
        if self.open.len() >= MAX_OPEN_SPANS {
            // Leak guard: force-retire the oldest open span unfinished.
            let (_, span) = self.open.remove(0);
            self.push_done(span);
        }
        self.open.push((
            op,
            Span {
                op: op.0,
                class: class.to_owned(),
                started_at: at,
                finished_at: None,
                hops: Vec::new(),
            },
        ));
    }

    /// Appends a hop to the operation's open span (no-op for unsampled ops).
    pub(crate) fn record_hop(&mut self, op: OpId, hop: HopRecord) {
        if let Some((_, span)) = self.open.iter_mut().rev().find(|(id, _)| *id == op) {
            span.hops.push(hop);
        }
    }

    /// Marks the hop of `op` that landed on `to` at `at` as a bounce (dead
    /// destination).  Hops are recorded optimistically at send time because
    /// liveness is only known at delivery.
    pub(crate) fn mark_bounce(&mut self, op: OpId, to: PeerId, at: SimTime) {
        if let Some((_, span)) = self.open.iter_mut().rev().find(|(id, _)| *id == op) {
            if let Some(hop) = span
                .hops
                .iter_mut()
                .rev()
                .find(|h| h.to == to && h.arrive_at == at && h.delivered)
            {
                hop.delivered = false;
            }
        }
    }

    /// Closes the operation's span and files it into the ring.
    pub(crate) fn finish(&mut self, op: OpId, at: SimTime) {
        if let Some(index) = self.open.iter().position(|(id, _)| *id == op) {
            let (_, mut span) = self.open.remove(index);
            span.finished_at = Some(at);
            self.push_done(span);
        }
    }

    fn push_done(&mut self, span: Span) {
        if self.done.len() >= self.config.capacity {
            self.done.pop_front();
            self.evicted += 1;
        }
        self.done.push_back(span);
    }

    /// Finished spans currently retained, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> + '_ {
        self.done.iter()
    }

    /// Number of finished spans currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// `true` if no finished span is retained.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Operations observed (sampled or not).
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Operations recorded (selected by the sampling modulus).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Finished spans evicted to honour the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total hop count per [`LinkKind`] across the retained spans, indexed
    /// by [`LinkKind::index`].
    pub fn hop_counts_by_kind(&self) -> [u64; LinkKind::ALL.len()] {
        let mut counts = [0u64; LinkKind::ALL.len()];
        for span in &self.done {
            for hop in &span.hops {
                counts[hop.kind.index()] += 1;
            }
        }
        counts
    }

    /// Absorbs another recorder's finished spans and counters (used when a
    /// harness aggregates per-phase buffers).
    pub fn merge(&mut self, other: TraceBuffer) {
        self.ops_seen += other.ops_seen;
        self.sampled += other.sampled;
        self.evicted += other.evicted;
        for span in other.done {
            self.push_done(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(to: u32, kind: LinkKind, at: u64, detour: bool) -> HopRecord {
        HopRecord {
            from: PeerId(0),
            to: PeerId(to),
            hop: 1,
            kind,
            message: "m",
            sent_at: SimTime::from_micros(at),
            arrive_at: SimTime::from_micros(at + 1),
            delivered: true,
            detour,
        }
    }

    #[test]
    fn ring_buffer_evicts_beyond_capacity() {
        let mut buffer = TraceBuffer::new(TraceConfig::new(3));
        for i in 0..10u64 {
            let op = OpId(i);
            buffer.begin(op, "op", SimTime::ZERO);
            buffer.record_hop(op, hop(1, LinkKind::Other, i, false));
            buffer.finish(op, SimTime::from_micros(i + 2));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.evicted(), 7);
        assert_eq!(buffer.sampled(), 10);
        let ops: Vec<u64> = buffer.spans().map(|s| s.op).collect();
        assert_eq!(ops, vec![7, 8, 9]);
    }

    #[test]
    fn sampling_modulus_selects_every_nth_op() {
        let mut buffer = TraceBuffer::new(TraceConfig::new(100).with_sample(3));
        for i in 0..9u64 {
            let op = OpId(i);
            buffer.begin(op, "op", SimTime::ZERO);
            buffer.record_hop(op, hop(1, LinkKind::Other, i, false));
            buffer.finish(op, SimTime::from_micros(i + 2));
        }
        assert_eq!(buffer.sampled(), 3);
        let ops: Vec<u64> = buffer.spans().map(|s| s.op).collect();
        assert_eq!(ops, vec![0, 3, 6]);
        // Unsampled ops record nothing.
        assert!(buffer.spans().all(|s| s.hops.len() == 1));
    }

    #[test]
    fn bounce_marks_the_matching_hop_undelivered() {
        let mut buffer = TraceBuffer::new(TraceConfig::new(10));
        let op = OpId(0);
        buffer.begin(op, "op", SimTime::ZERO);
        buffer.record_hop(op, hop(1, LinkKind::Parent, 0, false));
        buffer.record_hop(op, hop(2, LinkKind::Child, 5, false));
        buffer.mark_bounce(op, PeerId(2), SimTime::from_micros(6));
        buffer.record_hop(op, hop(3, LinkKind::Adjacent, 10, true));
        buffer.finish(op, SimTime::from_micros(12));
        let span = buffer.spans().next().unwrap();
        assert!(span.hops[0].delivered);
        assert!(!span.hops[1].delivered);
        assert!(span.hops[2].delivered && span.hops[2].detour);
        // The bounce itself plus the detour hop after it are both charged.
        assert_eq!(span.detour_count(), 2);
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in LinkKind::ALL {
            assert_eq!(LinkKind::parse(kind.name()), Some(kind));
            assert_eq!(LinkKind::ALL[kind.index()], kind);
        }
        assert_eq!(LinkKind::parse("warp"), None);
    }

    #[test]
    fn hop_counts_aggregate_by_kind() {
        let mut buffer = TraceBuffer::new(TraceConfig::new(10));
        let op = OpId(0);
        buffer.begin(op, "op", SimTime::ZERO);
        buffer.record_hop(op, hop(1, LinkKind::Finger, 0, false));
        buffer.record_hop(op, hop(2, LinkKind::Finger, 1, false));
        buffer.record_hop(op, hop(3, LinkKind::Successor, 2, false));
        buffer.finish(op, SimTime::from_micros(3));
        let counts = buffer.hop_counts_by_kind();
        assert_eq!(counts[LinkKind::Finger.index()], 2);
        assert_eq!(counts[LinkKind::Successor.index()], 1);
        assert_eq!(counts[LinkKind::Parent.index()], 0);
    }
}
