//! Message envelopes and the [`NetMessage`] trait implemented by every
//! protocol's payload type.

use crate::peer::PeerId;
use crate::stats::OpId;
use crate::time::SimTime;

/// Trait implemented by protocol message payloads so the simulator can
/// classify traffic without knowing the concrete protocol.
///
/// The `kind` string is used as a statistics bucket; it should be a small,
/// fixed set of labels (e.g. `"join.request"`, `"search.exact"`).
pub trait NetMessage: Clone + std::fmt::Debug {
    /// Statistics bucket this message belongs to.
    fn kind(&self) -> &'static str;

    /// Approximate payload size in bytes, used by the byte-level accounting
    /// in [`crate::codec`].  The default is a conservative fixed estimate;
    /// protocols can override it for realism.
    fn approximate_size(&self) -> usize {
        64
    }
}

/// A message in flight: payload plus addressing and accounting metadata.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Number of overlay hops this logical request has already made.
    /// The first message of an operation has `hop == 1`.
    pub hop: u32,
    /// Operation this message is attributed to (see [`crate::stats`]).
    pub op: OpId,
    /// Virtual time at which the message is scheduled to be delivered
    /// (send time plus one link-latency draw; see [`crate::time`]).
    pub deliver_at: SimTime,
    /// Protocol payload.
    pub payload: M,
}

impl<M: NetMessage> Envelope<M> {
    /// Statistics bucket of the payload.
    pub fn kind(&self) -> &'static str {
        self.payload.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Dummy(&'static str);
    impl NetMessage for Dummy {
        fn kind(&self) -> &'static str {
            self.0
        }
        fn approximate_size(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn envelope_exposes_payload_kind() {
        let env = Envelope {
            from: PeerId(1),
            to: PeerId(2),
            hop: 1,
            op: OpId(0),
            deliver_at: SimTime::ZERO,
            payload: Dummy("probe"),
        };
        assert_eq!(env.kind(), "probe");
        assert_eq!(env.payload.approximate_size(), 5);
    }

    #[test]
    fn default_approximate_size_is_nonzero() {
        #[derive(Clone, Debug)]
        struct Plain;
        impl NetMessage for Plain {
            fn kind(&self) -> &'static str {
                "plain"
            }
        }
        assert!(Plain.approximate_size() > 0);
    }
}
