//! Deterministic random number generation shared by every crate in the
//! workspace.
//!
//! The paper runs each experiment 10 times with different join/leave
//! sequences and averages the results.  To make those repetitions
//! reproducible, every source of randomness in this workspace goes through a
//! [`SimRng`] seeded explicitly by the harness.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The SplitMix64 finalizer: a cheap, well-distributed bijection on `u64`,
/// shared by seed derivation ([`SimRng::derive`]) and the stateless
/// peer-to-region hash ([`RegionMap`](crate::time::RegionMap)).
pub(crate) fn splitmix64_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random number generator with convenience helpers used across the
/// workspace (uniform keys, index selection, Bernoulli trials, shuffles).
#[derive(Clone, Debug)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a sub-component, mixing `salt`
    /// into the seed so different components get uncorrelated streams.
    pub fn derive(&self, salt: u64) -> Self {
        // SplitMix64-style mixing keeps derived seeds well distributed even
        // for small consecutive salts.
        Self::seeded(splitmix64_finalize(
            self.seed
                .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "uniform_u64 requires low < high");
        self.inner.gen_range(low..high)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index requires a non-empty range");
        self.inner.gen_range(0..len)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.index(slice.len());
            Some(&slice[idx])
        }
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_produces_uncorrelated_but_deterministic_children() {
        let parent = SimRng::seeded(7);
        let c1a = parent.derive(1).next_u64_fresh();
        let c1b = parent.derive(1).next_u64_fresh();
        let c2 = parent.derive(2).next_u64_fresh();
        assert_eq!(c1a, c1b);
        assert_ne!(c1a, c2);
    }

    impl SimRng {
        fn next_u64_fresh(mut self) -> u64 {
            self.next_u64()
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let f = rng.uniform_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_panics_on_empty_range() {
        let mut rng = SimRng::seeded(0);
        rng.uniform_u64(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_and_index() {
        let mut rng = SimRng::seeded(11);
        let items = [10, 20, 30, 40];
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(*rng.pick(&items).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        let empty: [i32; 0] = [];
        assert!(rng.pick(&empty).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seeded(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = SimRng::seeded(13);
        let mut empty: Vec<u32> = vec![];
        rng.shuffle(&mut empty);
        let mut one = vec![1];
        rng.shuffle(&mut one);
        assert_eq!(one, vec![1]);
    }
}
