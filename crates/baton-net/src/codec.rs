//! A compact binary wire format for envelopes.
//!
//! The paper evaluates BATON purely by message counts, but a production
//! overlay must put messages on the wire.  This module provides a small,
//! dependency-free framing format used by the examples and by byte-level
//! accounting: a fixed header followed by an opaque, protocol-defined
//! payload.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +--------+--------+--------+--------+----------------+
//! | magic  | from   | to     | hop    | payload        |
//! | u32    | u64    | u64    | u32    | u32 len + data |
//! +--------+--------+--------+--------+----------------+
//! ```

use crate::peer::PeerId;

/// Magic number identifying a BATON simulator frame.
pub const FRAME_MAGIC: u32 = 0xBA70_0001;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 4 + 8 + 8 + 4 + 4;

/// A decoded frame: addressing metadata plus the raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sender peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Overlay hop count.
    pub hop: u32,
    /// Opaque protocol payload.
    pub payload: Vec<u8>,
}

/// Errors produced while decoding a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// The magic number did not match [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The header advertises more payload bytes than the buffer holds.
    PayloadTruncated {
        /// Bytes promised by the header.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A peer id on the wire exceeds the narrow (`u32`) id space the
    /// registry hands out; the frame is corrupt or from a foreign encoder.
    BadPeerId(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::PayloadTruncated {
                expected,
                available,
            } => write!(
                f,
                "payload truncated: expected {expected} bytes, got {available}"
            ),
            DecodeError::BadPeerId(raw) => write!(f, "peer id {raw} exceeds the u32 id space"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a frame into a freshly allocated buffer.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    buf.extend_from_slice(&frame.from.raw().to_le_bytes());
    buf.extend_from_slice(&frame.to.raw().to_le_bytes());
    buf.extend_from_slice(&frame.hop.to_le_bytes());
    buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame.payload);
    buf
}

/// A little-endian cursor over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.bytes.split_at(N);
        self.bytes = rest;
        head.try_into().expect("split_at returned N bytes")
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }
}

/// Validates a wire peer id against the registry's narrow id space.
fn peer_id(raw: u64) -> Result<PeerId, DecodeError> {
    if raw > u32::MAX as u64 {
        return Err(DecodeError::BadPeerId(raw));
    }
    Ok(PeerId(raw as u32))
}

/// Decodes a frame from `bytes`.
pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let mut reader = Reader { bytes };
    let magic = reader.u32();
    if magic != FRAME_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let from = peer_id(reader.u64())?;
    let to = peer_id(reader.u64())?;
    let hop = reader.u32();
    let payload_len = reader.u32() as usize;
    if reader.bytes.len() < payload_len {
        return Err(DecodeError::PayloadTruncated {
            expected: payload_len,
            available: reader.bytes.len(),
        });
    }
    Ok(Frame {
        from,
        to,
        hop,
        payload: reader.bytes[..payload_len].to_vec(),
    })
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
pub fn encoded_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn sample_frame() -> Frame {
        Frame {
            from: PeerId(17),
            to: PeerId(99),
            hop: 3,
            payload: b"search_exact:42".to_vec(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let frame = sample_frame();
        let encoded = encode(&frame);
        assert_eq!(encoded.len(), encoded_len(frame.payload.len()));
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let frame = Frame {
            from: PeerId(0),
            to: PeerId(0),
            hop: 0,
            payload: Vec::new(),
        };
        let decoded = decode(&encode(&frame)).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let err = decode(&[1, 2, 3]).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut encoded = encode(&sample_frame());
        encoded[0] = 0xFF;
        let err = decode(&encoded).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let encoded = encode(&sample_frame());
        let err = decode(&encoded[..encoded.len() - 4]).unwrap_err();
        assert!(matches!(err, DecodeError::PayloadTruncated { .. }));
    }

    #[test]
    fn decode_errors_format_humanly() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "frame shorter than header"
        );
        assert!(DecodeError::BadMagic(0xdead_beef)
            .to_string()
            .contains("deadbeef"));
        assert!(DecodeError::PayloadTruncated {
            expected: 10,
            available: 4
        }
        .to_string()
        .contains("expected 10"));
    }

    #[test]
    fn randomized_roundtrip() {
        // Seeded stand-in for the old proptest property: frames with random
        // addressing and payloads of many sizes survive the roundtrip.
        let mut rng = SimRng::seeded(0xC0DEC);
        for _ in 0..256 {
            let payload_len = rng.index(512 + 1);
            let mut payload = vec![0u8; payload_len];
            for byte in &mut payload {
                *byte = rng.uniform_u64(0, 256) as u8;
            }
            let frame = Frame {
                from: PeerId(rng.uniform_u64(0, 1_000_000) as u32),
                to: PeerId(rng.uniform_u64(0, 1_000_000) as u32),
                hop: rng.uniform_u64(0, 10_000) as u32,
                payload,
            };
            let decoded = decode(&encode(&frame)).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn wide_peer_id_on_the_wire_is_rejected() {
        let mut encoded = encode(&sample_frame());
        // Corrupt the `from` field (bytes 4..12) with a value above u32::MAX.
        encoded[4..12].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        let err = decode(&encoded).unwrap_err();
        assert_eq!(err, DecodeError::BadPeerId(u64::from(u32::MAX) + 1));
        assert!(err.to_string().contains("u32 id space"));
    }
}
