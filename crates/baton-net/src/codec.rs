//! A compact binary wire format for envelopes.
//!
//! The paper evaluates BATON purely by message counts, but a production
//! overlay must put messages on the wire.  This module provides a small,
//! dependency-light framing format (built on [`bytes`]) used by the examples
//! and by byte-level accounting: a fixed header followed by an opaque,
//! protocol-defined payload.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +--------+--------+--------+--------+----------------+
//! | magic  | from   | to     | hop    | payload        |
//! | u32    | u64    | u64    | u32    | u32 len + data |
//! +--------+--------+--------+--------+----------------+
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::peer::PeerId;

/// Magic number identifying a BATON simulator frame.
pub const FRAME_MAGIC: u32 = 0xBA70_0001;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 4 + 8 + 8 + 4 + 4;

/// A decoded frame: addressing metadata plus the raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sender peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Overlay hop count.
    pub hop: u32,
    /// Opaque protocol payload.
    pub payload: Bytes,
}

/// Errors produced while decoding a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// The magic number did not match [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The header advertises more payload bytes than the buffer holds.
    PayloadTruncated {
        /// Bytes promised by the header.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::PayloadTruncated {
                expected,
                available,
            } => write!(
                f,
                "payload truncated: expected {expected} bytes, got {available}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a frame into a freshly allocated buffer.
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + frame.payload.len());
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u64_le(frame.from.raw());
    buf.put_u64_le(frame.to.raw());
    buf.put_u32_le(frame.hop);
    buf.put_u32_le(frame.payload.len() as u32);
    buf.put_slice(&frame.payload);
    buf.freeze()
}

/// Decodes a frame from `bytes`.
pub fn decode(mut bytes: Bytes) -> Result<Frame, DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let magic = bytes.get_u32_le();
    if magic != FRAME_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let from = PeerId(bytes.get_u64_le());
    let to = PeerId(bytes.get_u64_le());
    let hop = bytes.get_u32_le();
    let payload_len = bytes.get_u32_le() as usize;
    if bytes.len() < payload_len {
        return Err(DecodeError::PayloadTruncated {
            expected: payload_len,
            available: bytes.len(),
        });
    }
    let payload = bytes.split_to(payload_len);
    Ok(Frame {
        from,
        to,
        hop,
        payload,
    })
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
pub fn encoded_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame {
            from: PeerId(17),
            to: PeerId(99),
            hop: 3,
            payload: Bytes::from_static(b"search_exact:42"),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let frame = sample_frame();
        let encoded = encode(&frame);
        assert_eq!(encoded.len(), encoded_len(frame.payload.len()));
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let frame = Frame {
            from: PeerId(0),
            to: PeerId(0),
            hop: 0,
            payload: Bytes::new(),
        };
        let decoded = decode(encode(&frame)).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let err = decode(Bytes::from_static(&[1, 2, 3])).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut encoded = BytesMut::from(&encode(&sample_frame())[..]);
        encoded[0] = 0xFF;
        let err = decode(encoded.freeze()).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let encoded = encode(&sample_frame());
        let cut = encoded.slice(..encoded.len() - 4);
        let err = decode(cut).unwrap_err();
        assert!(matches!(err, DecodeError::PayloadTruncated { .. }));
    }

    #[test]
    fn decode_errors_format_humanly() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "frame shorter than header"
        );
        assert!(DecodeError::BadMagic(0xdead_beef)
            .to_string()
            .contains("deadbeef"));
        assert!(DecodeError::PayloadTruncated {
            expected: 10,
            available: 4
        }
        .to_string()
        .contains("expected 10"));
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(from in 0u64..1_000_000, to in 0u64..1_000_000,
                          hop in 0u32..10_000, payload in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512)) {
            let frame = Frame {
                from: PeerId(from),
                to: PeerId(to),
                hop,
                payload: Bytes::from(payload),
            };
            let decoded = decode(encode(&frame)).unwrap();
            proptest::prop_assert_eq!(decoded, frame);
        }
    }
}
