//! # baton-net — deterministic message-passing P2P simulator
//!
//! This crate is the network substrate on top of which the BATON overlay
//! ([`baton-core`]), the Chord baseline ([`baton-chord`]) and the multiway
//! tree baseline ([`baton-mtree`]) are built.
//!
//! The BATON paper (Jagadish, Ooi, Rinard, Vu — VLDB 2005) evaluates every
//! mechanism by the **number of messages** exchanged between peers, not by
//! wall-clock latency on a particular testbed.  The substrate is therefore a
//! *deterministic* simulator: peers are logical entities identified by a
//! [`PeerId`], messages are explicit [`Envelope`] values pushed through a
//! [`SimNetwork`], and the network records per-kind, per-peer and
//! per-operation counters in [`MessageStats`].
//!
//! Beyond the paper's count-only evaluation, the network is a
//! **discrete-event engine with virtual time** ([`time`]): each send draws a
//! link latency from a pluggable [`LatencyModel`] and is scheduled on a
//! binary-heap event queue, operations carry start/finish timestamps, and an
//! open-loop workload can interleave operations by advancing the arrival
//! clock ([`SimNetwork::advance_to`]).  The default model is constant-zero
//! latency, under which message counts are bit-identical to the original
//! count-only substrate.
//!
//! ## Design
//!
//! * **Determinism.**  There is no background thread, no timer and no async
//!   runtime.  Virtual time is derived purely from seeded latency models,
//!   never from the wall clock, and latency streams are separate from
//!   protocol RNGs.  Every experiment that uses the same seed produces
//!   identical message counts and latencies, which makes the reproduction of
//!   the paper's figures repeatable and the tests meaningful.
//! * **Failure injection.**  Peers can be marked dead; sending to a dead peer
//!   is counted as a failed delivery and surfaced to the caller so protocols
//!   can exercise their fault-tolerance paths (paper §III-C/D).
//! * **Accounting scopes.**  Higher layers wrap each logical operation
//!   (join, leave, search, …) in an [`OpScope`] so the harness can report the
//!   *average messages per operation* series that every sub-figure of
//!   Figure 8 plots.
//! * **Wire realism.**  [`codec`] provides a compact binary encoding of
//!   envelopes so byte-level traffic can also be accounted, even though the
//!   paper itself only counts messages.
//!
//! ## Quick example
//!
//! ```
//! use baton_net::{NetMessage, PeerId, SimNetwork};
//!
//! #[derive(Clone, Debug)]
//! enum Ping { Ping, Pong }
//! impl NetMessage for Ping {
//!     fn kind(&self) -> &'static str {
//!         match self { Ping::Ping => "ping", Ping::Pong => "pong" }
//!     }
//! }
//!
//! let mut net: SimNetwork<Ping> = SimNetwork::new();
//! let a = net.add_peer();
//! let b = net.add_peer();
//! let op = net.begin_op("rpc");
//! net.send(op, a, b, Ping::Ping).unwrap();
//! let env = net.deliver_next().unwrap().unwrap();
//! assert_eq!(env.to, b);
//! net.send(op, b, a, Ping::Pong).unwrap();
//! net.finish_op(op);
//! assert_eq!(net.stats().total_sent(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod message;
pub mod network;
pub mod overlay;
pub mod parallel;
pub mod peer;
pub mod profiler;
pub mod rng;
pub mod serve;
pub mod stats;
pub mod time;
pub mod trace;

pub use message::{Envelope, NetMessage};
pub use network::{DeliveryError, SendError, SimNetwork};
pub use overlay::{
    ChurnCost, OpCost, Overlay, OverlayCapabilities, OverlayError, OverlayResult, RepairPolicy,
};
pub use parallel::{
    default_threads, run_indexed, run_indexed_with, set_threads, threads, with_threads,
};
pub use peer::{PeerId, PeerRegistry, PeerStatus};
pub use rng::SimRng;
pub use serve::{
    ExactPlacement, RoutingSnapshot, ServeAnswer, ServeCounters, ServeStatus, SnapshotBuilder,
    SnapshotCell, SnapshotReader,
};
pub use stats::{ClassStats, Histogram, MessageStats, OpId, OpScope, OpStats};
pub use time::{
    LatencyModel, LatencyPlan, LinkDegradation, LinkScope, RegionMap, RegionalLatency, SimTime,
};
pub use trace::{HopRecord, LinkKind, Span, TraceBuffer, TraceConfig};
