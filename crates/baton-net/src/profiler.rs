//! Feature-gated scoped-counter/timer profiler for hot-path attribution.
//!
//! The simulator's outputs are deterministic, but its *wall-clock cost* is
//! not self-describing: a churn run at N=100k spends its time somewhere in
//! join/leave/failure handling, stats retirement, or bookkeeping, and
//! per-row harness timings are too coarse to say where.  This module gives
//! every crate in the workspace a zero-setup way to attribute time and
//! event counts to named scopes:
//!
//! ```
//! {
//!     let _g = baton_net::profiler::scope("join.locate");
//!     // ... work measured until `_g` drops ...
//! }
//! baton_net::profiler::count("join.hops", 3);
//! ```
//!
//! With the `profiler` cargo feature **disabled** (the default) every call
//! is an empty inline function and [`ScopeGuard`] is a zero-sized type, so
//! the instrumentation compiles away entirely — the deterministic outputs
//! *and* the machine code of the hot paths are unchanged.  With the feature
//! enabled, scopes accumulate `(count, total ns)` into a process-global
//! table that [`snapshot`] drains into a stable, name-sorted list.  Wall
//! time feeding the table comes from [`std::time::Instant`] and is
//! explicitly *not* part of any deterministic output: it is dumped only
//! into the optional `profiler` section of the perf JSON.

#[cfg(feature = "profiler")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Instant;

    static TABLE: Mutex<Option<BTreeMap<&'static str, (u64, u64)>>> = Mutex::new(None);

    fn with_table<R>(f: impl FnOnce(&mut BTreeMap<&'static str, (u64, u64)>) -> R) -> R {
        let mut guard = TABLE
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(guard.get_or_insert_with(BTreeMap::new))
    }

    /// Timer guard: adds one count and the elapsed nanoseconds on drop.
    pub struct ScopeGuard {
        name: &'static str,
        start: Instant,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            with_table(|t| {
                let entry = t.entry(self.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += ns;
            });
        }
    }

    pub fn scope(name: &'static str) -> ScopeGuard {
        ScopeGuard {
            name,
            start: Instant::now(),
        }
    }

    pub fn count(name: &'static str, n: u64) {
        with_table(|t| {
            t.entry(name).or_insert((0, 0)).0 += n;
        });
    }

    pub fn snapshot() -> Vec<(&'static str, u64, u64)> {
        with_table(|t| t.iter().map(|(name, &(c, ns))| (*name, c, ns)).collect())
    }

    pub fn reset() {
        with_table(|t| t.clear());
    }

    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "profiler"))]
mod imp {
    /// Zero-sized no-op guard: the disabled-profiler build compiles scopes away.
    pub struct ScopeGuard;

    #[inline(always)]
    pub fn scope(_name: &'static str) -> ScopeGuard {
        ScopeGuard
    }

    #[inline(always)]
    pub fn count(_name: &'static str, _n: u64) {}

    #[inline(always)]
    pub fn snapshot() -> Vec<(&'static str, u64, u64)> {
        Vec::new()
    }

    #[inline(always)]
    pub fn reset() {}

    pub const fn enabled() -> bool {
        false
    }
}

pub use imp::ScopeGuard;

/// Starts a named timer scope; the returned guard records `(count += 1,
/// ns += elapsed)` under `name` when dropped.  No-op without the
/// `profiler` feature.
#[inline(always)]
pub fn scope(name: &'static str) -> ScopeGuard {
    imp::scope(name)
}

/// Adds `n` to the event counter under `name` (no timing).  No-op without
/// the `profiler` feature.
#[inline(always)]
pub fn count(name: &'static str, n: u64) {
    imp::count(name, n)
}

/// The accumulated `(name, count, total_ns)` rows, sorted by name.  Empty
/// without the `profiler` feature.
pub fn snapshot() -> Vec<(&'static str, u64, u64)> {
    imp::snapshot()
}

/// Clears all accumulated counters.
pub fn reset() {
    imp::reset()
}

/// Whether the `profiler` feature is compiled in.
pub const fn enabled() -> bool {
    imp::enabled()
}

#[cfg(all(test, feature = "profiler"))]
mod tests {
    use super::*;

    #[test]
    fn scopes_and_counters_accumulate_monotonically() {
        reset();
        {
            let _g = scope("test.scope");
            std::hint::black_box(1 + 1);
        }
        count("test.counter", 5);
        count("test.counter", 2);
        let snap = snapshot();
        let scope_row = snap.iter().find(|(n, _, _)| *n == "test.scope").unwrap();
        assert_eq!(scope_row.1, 1);
        let counter_row = snap.iter().find(|(n, _, _)| *n == "test.counter").unwrap();
        assert_eq!(counter_row.1, 7);
        assert_eq!(counter_row.2, 0);

        {
            let _g = scope("test.scope");
        }
        let again = snapshot();
        let scope_row2 = again.iter().find(|(n, _, _)| *n == "test.scope").unwrap();
        assert_eq!(scope_row2.1, 2);
        assert!(scope_row2.2 >= scope_row.2, "total ns must be monotonic");
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted() {
        reset();
        count("zz", 1);
        count("aa", 1);
        count("mm", 1);
        let names: Vec<_> = snapshot().into_iter().map(|(n, _, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        reset();
    }
}

#[cfg(all(test, not(feature = "profiler")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        assert!(!enabled());
        let _g = scope("anything");
        count("anything", 10);
        assert!(snapshot().is_empty());
        reset();
    }
}
