//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha-based `StdRng`, but every consumer in this
//! workspace only relies on determinism per seed and on reasonable
//! statistical quality, both of which xoshiro256** provides.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The deterministic generators in this crate never fail, so this type is
/// never constructed; it exists for signature compatibility.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, returning an error on failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires a non-empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Widening multiply rejection-free mapping (Lemire); the tiny
                // modulo bias over a 128-bit draw is far below what any test
                // in this workspace can observe.
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let scaled = (draw % span) as $t;
                low.wrapping_add(scaled)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires a non-empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let scaled = (draw % span) as i128;
                (low as i128 + scaled) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires a non-empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Inclusive sampling in `[low, high]`: the span `high - low + 1` is
/// computed in `u128`, so `high == MAX` needs no special case and cannot
/// overflow or divide by zero.
macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range requires a non-empty range");
                let span = (high as u128) - (low as u128) + 1;
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                low.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0xFE3A_87FB_56E9_4CB1,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i: usize = rng.gen_range(0usize..=3);
            assert!(i <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_cover_the_full_domain_without_panicking() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_max_u32 = false;
        for _ in 0..200 {
            // Full-domain inclusive ranges: the special cases that used to
            // divide by zero (u32) or drop the top value (usize).
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
            let _: usize = rng.gen_range(0usize..=usize::MAX);
            let v: u32 = rng.gen_range(u32::MAX - 1..=u32::MAX);
            assert!(v >= u32::MAX - 1);
            saw_max_u32 |= v == u32::MAX;
            let b: u8 = rng.gen_range(250u8..=u8::MAX);
            assert!(b >= 250);
        }
        assert!(saw_max_u32, "inclusive upper bound must be reachable");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
