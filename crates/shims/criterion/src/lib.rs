//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the Criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the median per-iteration
//! time.  It is a regression smoke-check, not a statistics engine; swap in
//! real Criterion when the environment can fetch it.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; drives the measured iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: grow the iteration count until one sample
    // takes a measurable slice of time, capping total calibration effort.
    let mut iters = 1u64;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {name}: median {} over {samples} samples x {iters} iters",
        format_time(median)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into a runnable group, like Criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
