//! [`Overlay`] implementation for [`D3TreeSystem`].
//!
//! The D3-Tree is fully capable through the trait: it preserves key order
//! (range queries), runs the deterministic weight-based balancer
//! (`load_balancing`), repairs abrupt failures bucket-locally (`failures`)
//! and reports per-backbone-level access load (`level_load`).

use baton_net::{
    ChurnCost, Histogram, LatencyModel, MessageStats, OpCost, Overlay, OverlayCapabilities,
    OverlayError, OverlayResult, PeerId, SimTime, TraceBuffer, TraceConfig,
};

use crate::system::{D3Error, D3TreeSystem};

fn op_err(error: D3Error) -> OverlayError {
    OverlayError::Op(error.to_string())
}

impl Overlay for D3TreeSystem {
    fn name(&self) -> &'static str {
        "D3-Tree"
    }

    fn capabilities(&self) -> OverlayCapabilities {
        OverlayCapabilities::FULL
    }

    fn node_count(&self) -> usize {
        D3TreeSystem::node_count(self)
    }

    fn total_items(&self) -> usize {
        D3TreeSystem::total_items(self)
    }

    fn stats(&self) -> &MessageStats {
        D3TreeSystem::stats(self)
    }

    fn stats_mut(&mut self) -> &mut MessageStats {
        D3TreeSystem::stats_mut(self)
    }

    fn now(&self) -> SimTime {
        D3TreeSystem::now(self)
    }

    fn advance_to(&mut self, at: SimTime) {
        D3TreeSystem::advance_to(self, at);
    }

    fn set_latency_model(&mut self, model: LatencyModel) {
        D3TreeSystem::set_latency_model(self, model);
    }

    fn estimated_state_bytes(&self) -> u64 {
        D3TreeSystem::estimated_state_bytes(self)
    }

    fn set_trace(&mut self, config: TraceConfig) {
        D3TreeSystem::set_trace(self, config);
    }

    fn take_trace(&mut self) -> Option<TraceBuffer> {
        D3TreeSystem::take_trace(self)
    }

    fn routing_snapshot(&self) -> Option<baton_net::serve::RoutingSnapshot> {
        Some(self.build_routing_snapshot())
    }

    fn join_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = D3TreeSystem::join_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn peers(&self) -> &[PeerId] {
        D3TreeSystem::peers(self)
    }

    fn leave_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = D3TreeSystem::leave_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn leave_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = D3TreeSystem::leave(self, peer).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: 0,
        })
    }

    fn fail_random(&mut self) -> OverlayResult<ChurnCost> {
        let report = D3TreeSystem::fail_random(self).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: report.lost_items,
        })
    }

    fn fail_peer(&mut self, peer: PeerId) -> OverlayResult<ChurnCost> {
        let report = D3TreeSystem::fail(self, peer).map_err(op_err)?;
        Ok(ChurnCost {
            locate_messages: report.locate_messages,
            update_messages: report.update_messages,
            lost_items: report.lost_items,
        })
    }

    fn insert(&mut self, key: u64, _value: u64) -> OverlayResult<OpCost> {
        // The baseline tracks key multisets; values are not materialised.
        let report = D3TreeSystem::insert(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: 0,
            nodes_visited: report.nodes_visited,
            balance_messages: report.balance_messages,
        })
    }

    fn delete(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = D3TreeSystem::delete(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: report.balance_messages,
        })
    }

    fn search_exact(&mut self, key: u64) -> OverlayResult<OpCost> {
        let report = D3TreeSystem::search_exact(self, key).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn search_range(&mut self, low: u64, high: u64) -> OverlayResult<OpCost> {
        let report = D3TreeSystem::search_range(self, low, high).map_err(op_err)?;
        Ok(OpCost {
            messages: report.messages,
            matches: report.matches,
            nodes_visited: report.nodes_visited,
            balance_messages: 0,
        })
    }

    fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        D3TreeSystem::access_load_by_level(self)
    }

    fn replication(&self) -> usize {
        D3TreeSystem::replication(self)
    }

    fn set_replication(&mut self, k: usize) -> OverlayResult<()> {
        D3TreeSystem::set_replication(self, k).map_err(op_err)
    }

    fn balance_shift_histogram(&self) -> Option<&Histogram> {
        Some(D3TreeSystem::balance_shift_histogram(self))
    }

    fn validate(&self) -> Result<(), String> {
        D3TreeSystem::validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3tree_is_fully_capable_through_the_trait() {
        let mut overlay: Box<dyn Overlay> = Box::new(D3TreeSystem::build(1, 50).unwrap());
        assert_eq!(overlay.name(), "D3-Tree");
        assert_eq!(overlay.capabilities(), OverlayCapabilities::FULL);

        overlay.insert(123_456, 99).unwrap();
        assert_eq!(overlay.search_exact(123_456).unwrap().matches, 1);
        let range = overlay.search_range(1, 1_000_000_000).unwrap();
        assert_eq!(range.matches, 1);
        assert!(range.nodes_visited >= 1);
        assert_eq!(overlay.delete(123_456).unwrap().matches, 1);

        overlay.join_random().unwrap();
        overlay.leave_random().unwrap();
        let fail = overlay.fail_random().unwrap();
        assert!(fail.locate_messages + fail.update_messages > 0);
        assert_eq!(overlay.node_count(), 49);
        assert!(overlay.balance_shift_histogram().is_some());
        overlay.validate().unwrap();
    }

    #[test]
    fn d3tree_reports_per_level_access_load() {
        let mut overlay: Box<dyn Overlay> = Box::new(D3TreeSystem::build(2, 120).unwrap());
        for i in 0..200u64 {
            overlay.search_exact(1 + i * 4_999_999).unwrap();
        }
        let by_level = overlay.access_load_by_level();
        assert!(by_level.len() >= 2);
        assert!(by_level.iter().any(|(_, load)| *load > 0.0));
        // The root host concentrates routed traffic.
        assert!(by_level[0].1 > 0.0);
    }
}
