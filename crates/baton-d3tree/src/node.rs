//! Per-peer and per-bucket state of the D3-Tree baseline.
//!
//! A D3-Tree peer lives in exactly one **bucket** (a leaf of the perfect
//! binary backbone) and owns a contiguous slice of the key domain inside
//! that bucket.  Peers of a bucket — and buckets themselves — are kept in
//! key order, so the global in-order sequence of peers partitions the whole
//! domain and doubles as the horizontal adjacency list range sweeps walk.

use baton_net::PeerId;

use crate::range::DRange;

/// One peer of a bucket: its address, the key slice it owns and the sorted
/// multiset of keys stored under that slice.
#[derive(Clone, Debug)]
pub struct BucketPeer {
    /// The peer's network address.
    pub peer: PeerId,
    /// The contiguous slice of the domain this peer owns.
    pub range: DRange,
    /// Stored keys, sorted; every key lies inside `range`.
    pub keys: Vec<u64>,
}

impl BucketPeer {
    /// Creates a peer owning `range` with no data.
    pub fn new(peer: PeerId, range: DRange) -> Self {
        Self {
            peer,
            range,
            keys: Vec::new(),
        }
    }

    /// Inserts one key, keeping the multiset sorted.
    pub fn insert_key(&mut self, key: u64) {
        let at = self.keys.partition_point(|k| *k <= key);
        self.keys.insert(at, key);
    }

    /// Removes one occurrence of `key`; `true` if one was present.
    pub fn remove_key(&mut self, key: u64) -> bool {
        let at = self.keys.partition_point(|k| *k < key);
        if self.keys.get(at) == Some(&key) {
            self.keys.remove(at);
            true
        } else {
            false
        }
    }

    /// Number of stored occurrences of `key`.
    pub fn count_key(&self, key: u64) -> usize {
        self.keys.partition_point(|k| *k <= key) - self.keys.partition_point(|k| *k < key)
    }

    /// Number of stored keys in `[low, high)`.
    pub fn count_in(&self, low: u64, high: u64) -> usize {
        self.keys.partition_point(|k| *k < high) - self.keys.partition_point(|k| *k < low)
    }
}

/// A leaf bucket of the backbone: consecutive peers in key order.
///
/// The invariant the whole overlay rests on: a bucket is **never empty**
/// (departures that would empty one trigger bucket-local repair or a
/// backbone contraction first), and the concatenation of its peers' ranges
/// is contiguous.
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    /// The bucket's peers, in key order.
    pub peers: Vec<BucketPeer>,
}

impl Bucket {
    /// Lowest key covered by the bucket.
    pub fn low(&self) -> u64 {
        self.peers.first().expect("bucket is never empty").range.low
    }

    /// One past the highest key covered by the bucket.
    pub fn high(&self) -> u64 {
        self.peers.last().expect("bucket is never empty").range.high
    }

    /// The peer that hosts this bucket's backbone leaf (its first peer).
    pub fn head(&self) -> PeerId {
        self.peers.first().expect("bucket is never empty").peer
    }

    /// Number of peers in the bucket.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the bucket holds no peers (only ever observed
    /// mid-repair).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Total stored keys across the bucket's peers.
    pub fn item_count(&self) -> u64 {
        self.peers.iter().map(|p| p.keys.len() as u64).sum()
    }

    /// Position of the peer whose range contains `key`, if any.
    pub fn position_of_key(&self, key: u64) -> Option<usize> {
        self.peers.iter().position(|p| p.range.contains(key))
    }

    /// Position of `peer` in the bucket, if present.
    pub fn position_of_peer(&self, peer: PeerId) -> Option<usize> {
        self.peers.iter().position(|p| p.peer == peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_multiset_operations() {
        let mut p = BucketPeer::new(PeerId(1), DRange::new(0, 100));
        for k in [5u64, 3, 5, 9, 5] {
            p.insert_key(k);
        }
        assert_eq!(p.keys, vec![3, 5, 5, 5, 9]);
        assert_eq!(p.count_key(5), 3);
        assert_eq!(p.count_in(4, 9), 3);
        assert!(p.remove_key(5));
        assert!(!p.remove_key(7));
        assert_eq!(p.count_key(5), 2);
    }

    #[test]
    fn bucket_views() {
        let mut b = Bucket::default();
        b.peers.push(BucketPeer::new(PeerId(1), DRange::new(0, 50)));
        b.peers
            .push(BucketPeer::new(PeerId(2), DRange::new(50, 100)));
        assert_eq!((b.low(), b.high()), (0, 100));
        assert_eq!(b.head(), PeerId(1));
        assert_eq!(b.position_of_key(75), Some(1));
        assert_eq!(b.position_of_peer(PeerId(2)), Some(1));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.item_count(), 0);
    }
}
