//! # baton-d3tree — D3-Tree overlay baseline
//!
//! A reconstruction of the **D3-Tree** of Sourla, Sioutas, Tsichlas and
//! Zaroliagis (*"D3-Tree: a dynamic distributed deterministic load-balancer
//! for decentralized tree structures"*, 2015) — a direct descendant of the
//! BATON lineage that replaces per-node adaptive balancing with a
//! **deterministic, weight-driven** scheme over peer buckets:
//!
//! * a perfect binary backbone whose leaves hold buckets of `Θ(log N)`
//!   peers, key ranges partitioned in-order across buckets and peers;
//! * weight counters (peers and items per subtree) on every backbone node,
//!   maintained along the leaf-to-root path of each update;
//! * joins descend towards the lighter child; counter drift past a fixed
//!   tolerance triggers an even redistribution of the highest unbalanced
//!   subtree — no randomness, no sampling;
//! * the backbone contracts or extends a level when the average bucket
//!   leaves the `Θ(log N)` band;
//! * exact-match routing in `O(log N)` messages over the backbone, range
//!   sweeps in `O(log N + X)` over the horizontal peer adjacency;
//! * departures and failures repair bucket-locally (an emptied bucket
//!   steals from its backbone sibling before any global restructuring).
//!
//! The system implements [`baton_net::Overlay`] with every capability
//! enabled, so registering one `OverlaySpec` in `baton_sim::driver` puts it
//! in all nine Figure-8 drivers and every time-domain scenario.
//!
//! ```
//! use baton_d3tree::D3TreeSystem;
//!
//! let mut tree = D3TreeSystem::build(42, 30).unwrap();
//! tree.insert(123_456).unwrap();
//! assert_eq!(tree.search_exact(123_456).unwrap().matches, 1);
//! tree.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod node;
pub mod overlay;
pub mod range;
pub mod system;

pub use baton_net::Overlay;
pub use node::{Bucket, BucketPeer};
pub use range::DRange;
pub use system::{D3ChurnReport, D3Error, D3Message, D3OpReport, D3TreeSystem};
