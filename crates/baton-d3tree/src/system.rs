//! The D3-Tree overlay simulation (Sourla, Sioutas, Tsichlas, Zaroliagis,
//! *"D3-Tree: a dynamic distributed deterministic load-balancer"*, 2015) —
//! the tree-structured baseline from the BATON lineage with deterministic,
//! weight-based balancing.
//!
//! Structure, as modelled here:
//!
//! * a **perfect binary backbone** of height `h` whose `2^h` leaves each
//!   hold a **bucket** of peers; buckets (and the peers inside them) are in
//!   key order, so the global peer sequence partitions the key domain and
//!   doubles as the horizontal adjacency list range sweeps walk;
//! * every backbone node is hosted by a peer (the head of the leftmost
//!   bucket of its subtree) and carries **weight counters** — peers and
//!   stored items per subtree — maintained along the leaf-to-root path of
//!   every update;
//! * **deterministic balancing**: joins descend from the root towards the
//!   lighter child; when a counter pair drifts past a fixed tolerance the
//!   highest unbalanced subtree redistributes its peers (bucket membership)
//!   or its items (per-peer key slices) evenly — no randomness, no sampling;
//! * **contraction / extension**: when the average bucket strays outside
//!   `Θ(log N)` the backbone grows or shrinks one level and the peer
//!   sequence is re-chunked evenly over the new leaves;
//! * exact-match routing climbs from the issuer's leaf to the lowest common
//!   ancestor and descends to the target leaf (`O(log N)` messages plus an
//!   `O(log N)` walk inside the bucket); range queries continue along peer
//!   adjacency for `O(log N + X)` total;
//! * departures and failures repair **bucket-locally**: an in-order
//!   neighbour absorbs the vacated key slice (and, for graceful leaves, the
//!   data), an emptied bucket steals a peer from its backbone sibling, and
//!   only when that fails does the backbone contract.

use std::collections::HashMap;

use baton_net::{Histogram, LinkKind, NetMessage, OpScope, PeerId, SimNetwork, SimRng};

use crate::node::{Bucket, BucketPeer};
use crate::range::DRange;

/// Sibling peer-count tolerance: redistribute a subtree's peers when
/// `max > PEER_RATIO * min + PEER_SLACK`.
const PEER_RATIO: u64 = 2;
/// Absolute slack of the peer-count tolerance.
const PEER_SLACK: u64 = 2;
/// Sibling item-count tolerance: redistribute a subtree's items when
/// `max > ITEM_RATIO * min + ITEM_SLACK`.
const ITEM_RATIO: u64 = 4;
/// Absolute slack of the item-count tolerance.
const ITEM_SLACK: u64 = 32;

/// Protocol messages of the D3-Tree baseline.
#[derive(Clone, Debug)]
pub enum D3Message {
    /// Join request descending towards the lightest bucket.
    Join,
    /// Search / insert / delete request being routed over the backbone.
    Search,
    /// Departure and failure-repair traffic.
    Leave,
    /// Weight-counter and link maintenance notifications.
    Maintenance,
    /// Redistribution traffic of the deterministic balancer.
    Balance,
}

impl NetMessage for D3Message {
    fn kind(&self) -> &'static str {
        match self {
            D3Message::Join => "d3.join",
            D3Message::Search => "d3.search",
            D3Message::Leave => "d3.leave",
            D3Message::Maintenance => "d3.maintenance",
            D3Message::Balance => "d3.balance",
        }
    }
}

/// Errors of the D3-Tree baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum D3Error {
    /// The referenced peer does not exist.
    UnknownPeer(PeerId),
    /// The overlay is empty.
    Empty,
    /// The last node cannot leave.
    LastNode,
    /// The key is outside the indexed domain.
    KeyOutOfDomain(u64),
    /// The requested replication degree is outside the supported range.
    ReplicationUnsupported(usize),
}

impl std::fmt::Display for D3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            D3Error::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            D3Error::Empty => write!(f, "the overlay is empty"),
            D3Error::LastNode => write!(f, "the last node cannot leave"),
            D3Error::KeyOutOfDomain(k) => write!(f, "key {k} outside the domain"),
            D3Error::ReplicationUnsupported(k) => write!(
                f,
                "replication degree {k} outside 1..={}",
                D3TreeSystem::MAX_REPLICATION
            ),
        }
    }
}

impl std::error::Error for D3Error {}

/// Result alias for D3-Tree operations.
pub type Result<T> = std::result::Result<T, D3Error>;

/// Cost report of a join, departure or failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct D3ChurnReport {
    /// Messages to find the target bucket / detect the departure.
    pub locate_messages: u64,
    /// Messages to update links, weight counters and redistributed state.
    pub update_messages: u64,
    /// Data items lost (non-zero only for abrupt failures).
    pub lost_items: usize,
}

/// Cost report of a routed operation (search, insert, delete).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct D3OpReport {
    /// Routing messages used.
    pub messages: u64,
    /// Matches found (queries) or removed (deletes).
    pub matches: usize,
    /// Peers whose slice intersected the operation.
    pub nodes_visited: usize,
    /// Messages of any item redistribution the operation triggered.
    pub balance_messages: u64,
}

/// The D3-Tree overlay.
#[derive(Debug)]
pub struct D3TreeSystem {
    net: SimNetwork<D3Message>,
    rng: SimRng,
    domain: DRange,
    /// Backbone height; the backbone has `1 << height` leaf buckets.
    height: u32,
    /// Leaf buckets in key order (`len == 1 << height`).
    buckets: Vec<Bucket>,
    /// Peer → index of its bucket.
    bucket_of: HashMap<PeerId, usize>,
    /// Every live peer, sorted by [`PeerId`] for O(1) seeded sampling.
    peer_list: Vec<PeerId>,
    /// `peer_weights[level][node]`: live peers in the subtree; level 0 is
    /// the root, level `height` the leaves.
    peer_weights: Vec<Vec<u64>>,
    /// `item_weights[level][node]`: stored items in the subtree.
    item_weights: Vec<Vec<u64>>,
    /// Shift sizes of every item redistribution (Figure 8(h) analogue).
    balance_hist: Histogram,
    /// Replication degree k: each key lives at its routed owner plus up to
    /// k−1 siblings of the same leaf bucket.  1 = no replication (the
    /// default and the byte-identical legacy configuration).
    replication: usize,
}

impl D3TreeSystem {
    /// Creates an empty overlay over the paper's `[1, 10^9)` domain.
    pub fn new(seed: u64) -> Self {
        Self::with_domain(seed, DRange::new(1, 1_000_000_000))
    }

    /// Creates an empty overlay over an explicit domain.
    pub fn with_domain(seed: u64, domain: DRange) -> Self {
        Self {
            net: SimNetwork::new(),
            rng: SimRng::seeded(seed),
            domain,
            height: 0,
            buckets: vec![Bucket::default()],
            bucket_of: HashMap::new(),
            peer_list: Vec::new(),
            peer_weights: vec![vec![0]],
            item_weights: vec![vec![0]],
            balance_hist: Histogram::new(),
            replication: 1,
        }
    }

    /// Builds an overlay of `n` nodes.
    pub fn build(seed: u64, n: usize) -> Result<Self> {
        let mut system = Self::new(seed);
        for _ in 0..n {
            system.join_random()?;
        }
        Ok(system)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.peer_list.len()
    }

    /// Approximate resident bytes of per-peer protocol state: the bucket
    /// vectors and their peers' key multisets, the peer→bucket map
    /// (hash-table slots at the ~8/7 load-factor reciprocal), the sampling
    /// list and the backbone weight matrices.  The shared network substrate
    /// is excluded.  The peer→bucket map is modelled from `len()`, not
    /// `capacity()`: after churn the hash table's allocated capacity
    /// depends on the per-process `RandomState` seed, and this estimate is
    /// sampled into deterministic scenario time series.
    pub fn estimated_state_bytes(&self) -> u64 {
        let buckets = (self.buckets.capacity() * std::mem::size_of::<Bucket>()) as u64;
        let peers_in_buckets: u64 = self
            .buckets
            .iter()
            .map(|b| {
                (b.peers.capacity() * std::mem::size_of::<BucketPeer>()) as u64
                    + b.peers
                        .iter()
                        .map(|p| (p.keys.capacity() * std::mem::size_of::<u64>()) as u64)
                        .sum::<u64>()
            })
            .sum();
        let slot = std::mem::size_of::<(PeerId, usize)>() as u64 + 1;
        let map = self.bucket_of.len() as u64 * slot * 8 / 7;
        let peers = (self.peer_list.capacity() * std::mem::size_of::<PeerId>()) as u64;
        let weights: u64 = self
            .peer_weights
            .iter()
            .chain(self.item_weights.iter())
            .map(|level| (level.capacity() * std::mem::size_of::<u64>()) as u64)
            .sum();
        buckets + peers_in_buckets + map + peers + weights
    }

    /// All peers, sorted by id — a borrowed view of the sampling list.
    pub fn peers(&self) -> &[PeerId] {
        &self.peer_list
    }

    /// Backbone height (`0` for a single bucket).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of leaf buckets (`1 << height`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total stored items.
    pub fn total_items(&self) -> usize {
        self.item_weights[0][0] as usize
    }

    /// Network statistics.
    pub fn stats(&self) -> &baton_net::MessageStats {
        self.net.stats()
    }

    /// Mutable network statistics.
    pub fn stats_mut(&mut self) -> &mut baton_net::MessageStats {
        self.net.stats_mut()
    }

    /// Virtual time the overlay's network has reached.
    pub fn now(&self) -> baton_net::SimTime {
        self.net.now()
    }

    /// Advances the network's arrival clock (see
    /// [`baton_net::SimNetwork::advance_to`]).
    pub fn advance_to(&mut self, at: baton_net::SimTime) {
        self.net.advance_to(at);
    }

    /// Installs a route recorder on the underlying network (see
    /// [`SimNetwork::set_trace`](baton_net::SimNetwork::set_trace)).
    pub fn set_trace(&mut self, config: baton_net::TraceConfig) {
        self.net.set_trace(config);
    }

    /// Removes and returns the route recorder, disabling tracing.
    pub fn take_trace(&mut self) -> Option<baton_net::TraceBuffer> {
        self.net.take_trace()
    }

    /// Replaces the network's link-latency model.
    pub fn set_latency_model(&mut self, model: baton_net::LatencyModel) {
        self.net.set_latency_model(model);
    }

    /// Distribution of item-redistribution shift sizes.
    pub fn balance_shift_histogram(&self) -> &Histogram {
        &self.balance_hist
    }

    fn random_peer(&mut self) -> Option<PeerId> {
        if self.peer_list.is_empty() {
            return None;
        }
        let idx = self.rng.index(self.peer_list.len());
        Some(self.peer_list[idx])
    }

    /// The peer hosting backbone node `(level, index)`: the head of the
    /// leftmost bucket of that subtree.
    fn host(&self, level: u32, index: usize) -> PeerId {
        self.buckets[index << (self.height - level)].head()
    }

    /// Index of the leaf bucket whose span contains `key`.
    fn leaf_of_key(&self, key: u64) -> usize {
        self.buckets.partition_point(|b| b.low() <= key) - 1
    }

    /// One routed hop: counted, scheduled, delivered.  Hops between two
    /// backbone roles hosted by the *same* peer are free (no message).
    fn hop(
        &mut self,
        op: OpScope,
        from: PeerId,
        to: PeerId,
        hop_no: &mut u32,
        kind: LinkKind,
    ) -> u64 {
        if from == to {
            return 0;
        }
        *hop_no += 1;
        self.net
            .send_with_kind(op, from, to, *hop_no, kind, D3Message::Search)
            .ok();
        let _ = self.net.deliver_next();
        1
    }

    /// Routes from `issuer` to the peer owning `key`: issuer → leaf host →
    /// lowest common ancestor → target leaf host → in-bucket walk.
    ///
    /// Returns `(bucket, position, messages)`.
    fn route_to_owner(
        &mut self,
        op: OpScope,
        issuer: PeerId,
        key: u64,
    ) -> Result<(usize, usize, u64)> {
        let start = *self
            .bucket_of
            .get(&issuer)
            .ok_or(D3Error::UnknownPeer(issuer))?;
        let target = self.leaf_of_key(key);
        let mut messages = 0u64;
        let mut hop_no = 0u32;
        let mut current = issuer;

        let start_head = self.buckets[start].head();
        messages += self.hop(op, current, start_head, &mut hop_no, LinkKind::Bucket);
        current = start_head;

        if start != target {
            let diff = (start ^ target) as u64;
            // Highest differing bit: the LCA sits that many levels up.
            let top = 63 - diff.leading_zeros();
            for k in 1..=top + 1 {
                let next = self.host(self.height - k, start >> k);
                messages += self.hop(op, current, next, &mut hop_no, LinkKind::Backbone);
                current = next;
            }
            for k in (0..=top).rev() {
                let next = self.host(self.height - k, target >> k);
                messages += self.hop(op, current, next, &mut hop_no, LinkKind::Backbone);
                current = next;
            }
        }

        let position = self.buckets[target]
            .position_of_key(key)
            .expect("buckets partition the domain");
        for p in 1..=position {
            let from = self.buckets[target].peers[p - 1].peer;
            let to = self.buckets[target].peers[p].peer;
            messages += self.hop(op, from, to, &mut hop_no, LinkKind::Bucket);
        }
        Ok((target, position, messages))
    }

    /// Adds `delta` to the peer-weight counters along `leaf`'s path.
    fn shift_peer_weights(&mut self, leaf: usize, delta: i64) {
        for level in 0..=self.height {
            let node = leaf >> (self.height - level);
            let w = &mut self.peer_weights[level as usize][node];
            *w = w.checked_add_signed(delta).expect("weight underflow");
        }
    }

    /// Adds `delta` to the item-weight counters along `leaf`'s path.
    fn shift_item_weights(&mut self, leaf: usize, delta: i64) {
        for level in 0..=self.height {
            let node = leaf >> (self.height - level);
            let w = &mut self.item_weights[level as usize][node];
            *w = w.checked_add_signed(delta).expect("weight underflow");
        }
    }

    /// Counts the weight-counter notifications along `leaf`'s path to the
    /// root (one maintenance message per distinct host pair).
    fn count_path_update(&mut self, op: OpScope, leaf: usize) -> u64 {
        let mut messages = 0u64;
        let mut from = self.buckets[leaf].head();
        for k in 1..=self.height {
            let to = self.host(self.height - k, leaf >> k);
            if from != to {
                self.net.count_message(op, "d3.maintenance", from, to);
                messages += 1;
                from = to;
            }
        }
        messages
    }

    /// Recomputes every weight counter from the buckets.
    fn rebuild_weights(&mut self) {
        let levels = self.height as usize + 1;
        self.peer_weights = vec![Vec::new(); levels];
        self.item_weights = vec![Vec::new(); levels];
        self.peer_weights[levels - 1] = self.buckets.iter().map(|b| b.len() as u64).collect();
        self.item_weights[levels - 1] = self.buckets.iter().map(|b| b.item_count()).collect();
        for level in (0..levels - 1).rev() {
            let (peers, items): (Vec<u64>, Vec<u64>) = (0..1usize << level)
                .map(|j| {
                    (
                        self.peer_weights[level + 1][2 * j]
                            + self.peer_weights[level + 1][2 * j + 1],
                        self.item_weights[level + 1][2 * j]
                            + self.item_weights[level + 1][2 * j + 1],
                    )
                })
                .unzip();
            self.peer_weights[level] = peers;
            self.item_weights[level] = items;
        }
    }

    /// `true` when `(max, min)` child weights violate the given tolerance.
    fn unbalanced(left: u64, right: u64, ratio: u64, slack: u64) -> bool {
        left.max(right) > ratio * left.min(right) + slack
    }

    /// Walks `leaf`'s path from the root down; at the highest node whose
    /// children's **peer** counters violate the tolerance, redistributes the
    /// subtree's peers evenly over its buckets.  Returns the messages spent.
    fn rebalance_peers_on_path(&mut self, op: OpScope, leaf: usize) -> u64 {
        for level in 0..self.height {
            let node = leaf >> (self.height - level);
            let left = self.peer_weights[level as usize + 1][2 * node];
            let right = self.peer_weights[level as usize + 1][2 * node + 1];
            if Self::unbalanced(left, right, PEER_RATIO, PEER_SLACK) {
                return self.redistribute_peers(op, level, node);
            }
        }
        0
    }

    /// Walks `leaf`'s path from the root down; at the highest node whose
    /// children's **item** counters violate the tolerance, redistributes the
    /// subtree's items evenly over its peers.  Returns the messages spent.
    fn rebalance_items_on_path(&mut self, op: OpScope, leaf: usize) -> u64 {
        for level in 0..self.height {
            let node = leaf >> (self.height - level);
            let left = self.item_weights[level as usize + 1][2 * node];
            let right = self.item_weights[level as usize + 1][2 * node + 1];
            if Self::unbalanced(left, right, ITEM_RATIO, ITEM_SLACK) {
                return self.redistribute_items(op, level, node);
            }
        }
        0
    }

    /// Evenly re-chunks the peer sequence of subtree `(level, node)` over
    /// its buckets (peers keep their key slices; only bucket membership —
    /// and therefore backbone leaf boundaries — moves).
    fn redistribute_peers(&mut self, op: OpScope, level: u32, node: usize) -> u64 {
        let first = node << (self.height - level);
        let last = (node + 1) << (self.height - level);
        let bucket_count = last - first;
        let old_sizes: Vec<usize> = self.buckets[first..last].iter().map(Bucket::len).collect();
        let mut sequence: Vec<BucketPeer> = Vec::new();
        for bucket in &mut self.buckets[first..last] {
            sequence.append(&mut bucket.peers);
        }
        let total = sequence.len();
        debug_assert!(total >= bucket_count, "buckets are never empty");
        let base = total / bucket_count;
        let extra = total % bucket_count;

        // A peer moves one bucket per boundary it crosses; each crossing is
        // one message over the horizontal adjacency.
        let mut messages = 0u64;
        let mut old_cut = 0usize;
        let mut new_cut = 0usize;
        for (i, old_size) in old_sizes.iter().enumerate().take(bucket_count - 1) {
            old_cut += old_size;
            new_cut += base + usize::from(i < extra);
            messages += old_cut.abs_diff(new_cut) as u64;
        }

        let mut taken = sequence.into_iter();
        for i in 0..bucket_count {
            let take = base + usize::from(i < extra);
            let peers: Vec<BucketPeer> = taken.by_ref().take(take).collect();
            for p in &peers {
                let previous = self.bucket_of.insert(p.peer, first + i);
                if previous != Some(first + i) {
                    let head = peers[0].peer;
                    if head != p.peer {
                        self.net.count_message(op, "d3.balance", head, p.peer);
                    }
                }
            }
            self.buckets[first + i].peers = peers;
        }
        self.rebuild_weights();
        messages
    }

    /// Evenly re-splits the items of subtree `(level, node)` over its peers:
    /// new slice boundaries are drawn from the subtree's sorted key sequence
    /// and every peer keeps a contiguous slice, so the global partition
    /// stays intact.  Records per-boundary shift sizes in the histogram.
    fn redistribute_items(&mut self, op: OpScope, level: u32, node: usize) -> u64 {
        let first = node << (self.height - level);
        let last = (node + 1) << (self.height - level);
        let span_low = self.buckets[first].low();
        let span_high = self.buckets[last - 1].high();

        // Flatten: the subtree's peers in order, and their concatenated
        // (already sorted) keys.
        let mut owners: Vec<(usize, usize)> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        let mut old_cuts: Vec<usize> = Vec::new();
        for b in first..last {
            for p in 0..self.buckets[b].len() {
                owners.push((b, p));
                keys.extend_from_slice(&self.buckets[b].peers[p].keys);
                old_cuts.push(keys.len());
            }
        }
        let peer_count = owners.len();
        let total = keys.len();
        if peer_count < 2 {
            return 0;
        }

        // New boundaries: the key at each even cut, nudged forward past
        // duplicate runs so boundaries stay increasing.  A duplicate pile-up
        // at the top of the span saturates the floor at `span_high`, leaving
        // the remaining peers with empty (but still contiguous) slices
        // instead of stepping past the span.
        let mut bounds = Vec::with_capacity(peer_count + 1);
        bounds.push(span_low);
        for i in 1..peer_count {
            let ideal = keys
                .get(i * total / peer_count)
                .copied()
                .unwrap_or(span_high);
            let previous = *bounds.last().expect("non-empty");
            let floor = (previous + 1).min(span_high);
            bounds.push(ideal.clamp(floor, span_high));
        }
        bounds.push(span_high);

        // Items crossing each peer boundary: |old cumulative − new
        // cumulative|; every crossing is one transfer hop between the
        // boundary's peers.
        let mut messages = 0u64;
        for i in 1..peer_count {
            let new_cut = keys.partition_point(|k| *k < bounds[i]);
            let moved = old_cuts[i - 1].abs_diff(new_cut) as u64;
            if moved > 0 {
                messages += moved;
                self.balance_hist.record(moved as usize);
                let from = self.buckets[owners[i - 1].0].peers[owners[i - 1].1].peer;
                let to = self.buckets[owners[i].0].peers[owners[i].1].peer;
                self.net.count_message(op, "d3.balance", from, to);
            }
        }

        // Reassign slices and ranges.
        for (i, (b, p)) in owners.iter().enumerate() {
            let lo = keys.partition_point(|k| *k < bounds[i]);
            let hi = keys.partition_point(|k| *k < bounds[i + 1]);
            let peer = &mut self.buckets[*b].peers[*p];
            peer.range = DRange::new(bounds[i], bounds[i + 1]);
            peer.keys = keys[lo..hi].to_vec();
        }
        self.rebuild_weights();
        messages
    }

    /// Grows or shrinks the backbone one level when the average bucket size
    /// leaves the `Θ(log N)` band, re-chunking the peer sequence evenly.
    fn maybe_resize(&mut self, op: OpScope) -> u64 {
        let peers = self.peer_list.len() as u64;
        let leaves = self.buckets.len() as u64;
        let target = self.height as u64 + 2;
        if peers > leaves * 2 * target {
            self.reshape(op, self.height + 1)
        } else if self.height > 0 && peers < leaves * target / 2 {
            self.reshape(op, self.height - 1)
        } else {
            0
        }
    }

    /// Rebuilds the backbone at `new_height`, distributing the global peer
    /// sequence evenly over the new leaves.  Handles emptied buckets (the
    /// contraction path of a departure) because it only reads the sequence.
    fn reshape(&mut self, op: OpScope, new_height: u32) -> u64 {
        let leaves = 1usize << new_height;
        let mut sequence: Vec<BucketPeer> = Vec::new();
        for bucket in &mut self.buckets {
            sequence.append(&mut bucket.peers);
        }
        let total = sequence.len();
        debug_assert!(total >= leaves, "not enough peers for {leaves} buckets");
        let base = total / leaves;
        let extra = total % leaves;

        self.height = new_height;
        self.buckets = vec![Bucket::default(); leaves];
        let mut messages = 0u64;
        let mut taken = sequence.into_iter();
        for i in 0..leaves {
            let take = base + usize::from(i < extra);
            let peers: Vec<BucketPeer> = taken.by_ref().take(take).collect();
            for p in &peers {
                let previous = self.bucket_of.insert(p.peer, i);
                if previous != Some(i) {
                    messages += 1;
                    let head = peers[0].peer;
                    if head != p.peer {
                        self.net.count_message(op, "d3.maintenance", head, p.peer);
                    }
                }
            }
            self.buckets[i].peers = peers;
        }
        self.rebuild_weights();
        messages
    }

    /// A new node joins: the request climbs from a random contact to the
    /// root, then descends towards the lighter child at every backbone node
    /// (the deterministic node balancer), and the newcomer takes over half
    /// of the most loaded peer of the chosen bucket.
    pub fn join_random(&mut self) -> Result<D3ChurnReport> {
        let peer = self.net.add_peer();
        let op = self.net.begin_op("d3.join");
        if self.peer_list.is_empty() {
            self.buckets[0]
                .peers
                .push(BucketPeer::new(peer, self.domain));
            self.bucket_of.insert(peer, 0);
            self.peer_list.push(peer);
            self.rebuild_weights();
            self.net.finish_op(op);
            return Ok(D3ChurnReport::default());
        }
        let contact = self.random_peer().expect("non-empty");
        let mut locate_messages = 0u64;
        let mut hop_no = 0u32;
        let mut current = contact;

        // Climb from the contact's leaf to the root…
        let start = self.bucket_of[&contact];
        let start_head = self.buckets[start].head();
        locate_messages += self.hop(op, current, start_head, &mut hop_no, LinkKind::Bucket);
        current = start_head;
        for k in 1..=self.height {
            let next = self.host(self.height - k, start >> k);
            locate_messages += self.hop(op, current, next, &mut hop_no, LinkKind::Backbone);
            current = next;
        }
        // …then descend towards the lighter child (ties go left).
        let mut node = 0usize;
        for level in 0..self.height {
            let left = self.peer_weights[level as usize + 1][2 * node];
            let right = self.peer_weights[level as usize + 1][2 * node + 1];
            node = if right < left { 2 * node + 1 } else { 2 * node };
            let next = self.host(level + 1, node);
            locate_messages += self.hop(op, current, next, &mut hop_no, LinkKind::Backbone);
            current = next;
        }
        let target = node;

        // The newcomer takes the upper half of the bucket's most loaded
        // peer (most items; ties go to the widest slice, then the lowest
        // position — fully deterministic).
        let split_pos = {
            let bucket = &self.buckets[target];
            (0..bucket.len())
                .max_by_key(|p| {
                    (
                        bucket.peers[*p].keys.len(),
                        bucket.peers[*p].range.width(),
                        std::cmp::Reverse(*p),
                    )
                })
                .expect("bucket is never empty")
        };
        let mut update_messages = 0u64;
        let (new_range, new_keys, splitter_peer) = {
            let splitter = &mut self.buckets[target].peers[split_pos];
            let (low, high) = (splitter.range.low, splitter.range.high);
            let mid = if splitter.range.width() < 2 {
                high
            } else if splitter.keys.len() >= 2 {
                splitter.keys[splitter.keys.len() / 2].clamp(low + 1, high)
            } else {
                low + splitter.range.width() / 2
            };
            splitter.range = DRange::new(low, mid);
            let at = splitter.keys.partition_point(|k| *k < mid);
            let moved = splitter.keys.split_off(at);
            (DRange::new(mid, high), moved, splitter.peer)
        };
        let mut newcomer = BucketPeer::new(peer, new_range);
        newcomer.keys = new_keys;
        self.buckets[target].peers.insert(split_pos + 1, newcomer);
        self.bucket_of.insert(peer, target);
        if let Err(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.insert(idx, peer);
        }
        self.net.count_message(op, "d3.join", splitter_peer, peer);
        update_messages += 1;
        self.shift_peer_weights(target, 1);
        update_messages += self.count_path_update(op, target);
        update_messages += self.rebalance_peers_on_path(op, target);
        update_messages += self.maybe_resize(op);

        self.net.finish_op(op);
        Ok(D3ChurnReport {
            locate_messages: locate_messages.max(1),
            update_messages,
            lost_items: 0,
        })
    }

    /// Removes `peer` from its bucket, returning the removed state and its
    /// bucket index; the caller decides what happens to keys and range.
    fn detach(&mut self, peer: PeerId) -> Result<(usize, BucketPeer)> {
        let bucket = *self
            .bucket_of
            .get(&peer)
            .ok_or(D3Error::UnknownPeer(peer))?;
        let position = self.buckets[bucket]
            .position_of_peer(peer)
            .ok_or(D3Error::UnknownPeer(peer))?;
        let departing = self.buckets[bucket].peers.remove(position);
        self.bucket_of.remove(&peer);
        if let Ok(idx) = self.peer_list.binary_search(&peer) {
            self.peer_list.remove(idx);
        }
        Ok((bucket, departing))
    }

    /// The in-order heir of a slice vacated in `bucket`: the globally
    /// previous peer if one exists, otherwise the next.  Returns
    /// `(bucket, position, absorb_left)` where `absorb_left` means the heir
    /// precedes the vacated slice.
    fn heir_of_slice(&self, bucket: usize, low: u64) -> (usize, usize, bool) {
        // Previous peer: last peer of this bucket below `low`, else the last
        // peer of the nearest non-empty bucket to the left.
        let before = self.buckets[bucket]
            .peers
            .iter()
            .rposition(|p| p.range.low < low);
        if let Some(p) = before {
            return (bucket, p, true);
        }
        for b in (0..bucket).rev() {
            if !self.buckets[b].is_empty() {
                return (b, self.buckets[b].len() - 1, true);
            }
        }
        // No predecessor: take the successor.
        if let Some(p) = self.buckets[bucket]
            .peers
            .iter()
            .position(|q| q.range.low >= low)
        {
            return (bucket, p, false);
        }
        for (b, bk) in self.buckets.iter().enumerate().skip(bucket + 1) {
            if !bk.is_empty() {
                return (b, 0, false);
            }
        }
        unreachable!("a multi-peer overlay always has an heir");
    }

    /// Shared tail of departures and failures: hand the vacated slice (and,
    /// for graceful leaves, the keys) to the in-order heir, repair an
    /// emptied bucket, update counters, rebalance, resize.
    fn remove_peer(&mut self, peer: PeerId, keep_keys: bool) -> Result<D3ChurnReport> {
        if self.peer_list.len() <= 1 {
            return Err(D3Error::LastNode);
        }
        let label = if keep_keys { "d3.leave" } else { "d3.fail" };
        let op = self.net.begin_op(label);
        let (bucket, departing) = match self.detach(peer) {
            Ok(v) => v,
            Err(e) => {
                self.net.finish_op(op);
                return Err(e);
            }
        };
        // A failed peer's items survive at k > 1 when a sibling of its
        // bucket is still around to stream the replica back; gracious
        // leaves always keep their keys.  `preserve` governs the data,
        // `keep_keys` keeps governing the depart-vs-fail network marking.
        let preserve = keep_keys || (self.replication > 1 && !self.buckets[bucket].is_empty());
        let lost_items = if preserve { 0 } else { departing.keys.len() };

        let (hb, hp, absorb_left) = self.heir_of_slice(bucket, departing.range.low);
        let heir_peer = {
            let heir = &mut self.buckets[hb].peers[hp];
            if absorb_left {
                heir.range = DRange::new(heir.range.low, departing.range.high);
                if preserve {
                    heir.keys.extend_from_slice(&departing.keys);
                }
            } else {
                heir.range = DRange::new(departing.range.low, heir.range.high);
                if preserve {
                    let mut keys = departing.keys.clone();
                    keys.extend_from_slice(&heir.keys);
                    heir.keys = keys;
                }
            }
            heir.peer
        };
        // Departure / detection message towards the heir.
        let mut locate_messages = 1u64;
        self.net.count_message(op, label, heir_peer, peer);
        if preserve && !keep_keys {
            // The replica copy is streamed from a bucket sibling to the heir.
            self.net
                .count_message(op, "d3.replica", heir_peer, heir_peer);
            locate_messages += 1;
        }
        if keep_keys {
            self.net.depart_peer(peer);
        } else {
            self.net.fail_peer(peer);
        }

        // Weight bookkeeping: the departed peer leaves `bucket`; its items
        // land on the heir's leaf (graceful) or vanish (failure).
        self.shift_peer_weights(bucket, -1);
        self.shift_item_weights(bucket, -(departing.keys.len() as i64));
        if preserve {
            self.shift_item_weights(hb, departing.keys.len() as i64);
        }

        let mut update_messages = 0u64;
        let mut reshaped = false;
        if self.buckets[bucket].is_empty() {
            // Bucket-local repair: steal a peer from the backbone sibling…
            let sibling = bucket ^ 1;
            if self.buckets[sibling].len() >= 2 {
                let stolen = if sibling > bucket {
                    self.buckets[sibling].peers.remove(0)
                } else {
                    let last = self.buckets[sibling].len() - 1;
                    self.buckets[sibling].peers.remove(last)
                };
                self.net
                    .count_message(op, "d3.maintenance", stolen.peer, heir_peer);
                update_messages += 1;
                let items = stolen.keys.len() as i64;
                self.bucket_of.insert(stolen.peer, bucket);
                self.buckets[bucket].peers.push(stolen);
                self.shift_peer_weights(sibling, -1);
                self.shift_item_weights(sibling, -items);
                self.shift_peer_weights(bucket, 1);
                self.shift_item_weights(bucket, items);
            } else {
                // …or contract the backbone a level when the sibling cannot
                // spare one.
                update_messages += self.reshape(op, self.height - 1);
                reshaped = true;
            }
        }
        if !reshaped {
            // The bucket is populated again: notify the weight counters
            // along its path, then let the deterministic balancer react.
            update_messages += self.count_path_update(op, bucket);
            update_messages += self.rebalance_peers_on_path(op, bucket);
            update_messages += self.maybe_resize(op);
        }

        self.net.finish_op(op);
        Ok(D3ChurnReport {
            locate_messages,
            update_messages,
            lost_items,
        })
    }

    /// A specific node departs gracefully.
    pub fn leave(&mut self, peer: PeerId) -> Result<D3ChurnReport> {
        self.remove_peer(peer, true)
    }

    /// A random node departs gracefully.
    pub fn leave_random(&mut self) -> Result<D3ChurnReport> {
        let peer = self.random_peer().ok_or(D3Error::Empty)?;
        self.leave(peer)
    }

    /// A specific node fails abruptly: its stored items are lost and the
    /// overlay repairs bucket-locally.
    pub fn fail(&mut self, peer: PeerId) -> Result<D3ChurnReport> {
        self.remove_peer(peer, false)
    }

    /// A random node fails abruptly.
    pub fn fail_random(&mut self) -> Result<D3ChurnReport> {
        let peer = self.random_peer().ok_or(D3Error::Empty)?;
        self.fail(peer)
    }

    fn check_key(&self, key: u64) -> Result<()> {
        if self.domain.contains(key) {
            Ok(())
        } else {
            Err(D3Error::KeyOutOfDomain(key))
        }
    }

    /// The replication degree k in effect (1 = no replication).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Highest replication degree the bucket-sibling placement supports.
    pub const MAX_REPLICATION: usize = 4;

    /// Sets the replication degree: each key's k−1 extra copies live on
    /// siblings of the owner's leaf bucket.  With a sibling alive, a failed
    /// peer's items survive the failure (`lost_items == 0`).
    pub fn set_replication(&mut self, k: usize) -> Result<()> {
        if k == 0 || k > Self::MAX_REPLICATION {
            return Err(D3Error::ReplicationUnsupported(k));
        }
        self.replication = k;
        Ok(())
    }

    /// The bucket siblings holding the k−1 replica copies of `peer`'s keys
    /// (in bucket order, the owner excluded).  Empty at k = 1.
    pub fn replica_targets(&self, peer: PeerId) -> Vec<PeerId> {
        if self.replication <= 1 {
            return Vec::new();
        }
        let Some(&bucket) = self.bucket_of.get(&peer) else {
            return Vec::new();
        };
        self.buckets[bucket]
            .peers
            .iter()
            .map(|p| p.peer)
            .filter(|p| *p != peer)
            .take(self.replication - 1)
            .collect()
    }

    /// Charges the replica-copy messages a write at `owner` costs at k > 1.
    fn charge_replica_copies(&mut self, op: OpScope, owner: PeerId) -> u64 {
        let mut copies = 0u64;
        for target in self.replica_targets(owner) {
            self.net.count_message(op, "d3.replica", owner, target);
            copies += 1;
        }
        copies
    }

    /// Inserts a value under `key` from a random issuer.
    pub fn insert(&mut self, key: u64) -> Result<D3OpReport> {
        self.check_key(key)?;
        let issuer = self.random_peer().ok_or(D3Error::Empty)?;
        let op = self.net.begin_op("d3.insert");
        let (bucket, position, mut messages) = self.route_to_owner(op, issuer, key)?;
        self.buckets[bucket].peers[position].insert_key(key);
        let owner = self.buckets[bucket].peers[position].peer;
        messages += self.charge_replica_copies(op, owner);
        self.shift_item_weights(bucket, 1);
        let balance_messages = self.rebalance_items_on_path(op, bucket);
        self.net.finish_op(op);
        Ok(D3OpReport {
            messages,
            matches: 0,
            nodes_visited: 1,
            balance_messages,
        })
    }

    /// Deletes one value stored under `key` from a random issuer.
    pub fn delete(&mut self, key: u64) -> Result<D3OpReport> {
        self.check_key(key)?;
        let issuer = self.random_peer().ok_or(D3Error::Empty)?;
        let op = self.net.begin_op("d3.delete");
        let (bucket, position, mut messages) = self.route_to_owner(op, issuer, key)?;
        let removed = self.buckets[bucket].peers[position].remove_key(key);
        let mut balance_messages = 0;
        if removed {
            let owner = self.buckets[bucket].peers[position].peer;
            messages += self.charge_replica_copies(op, owner);
            self.shift_item_weights(bucket, -1);
            balance_messages = self.rebalance_items_on_path(op, bucket);
        }
        self.net.finish_op(op);
        Ok(D3OpReport {
            messages,
            matches: usize::from(removed),
            nodes_visited: 1,
            balance_messages,
        })
    }

    /// Exact-match query for `key` from a random issuer.
    pub fn search_exact(&mut self, key: u64) -> Result<D3OpReport> {
        self.check_key(key)?;
        let issuer = self.random_peer().ok_or(D3Error::Empty)?;
        let op = self.net.begin_op("d3.search");
        let (bucket, position, messages) = self.route_to_owner(op, issuer, key)?;
        let matches = self.buckets[bucket].peers[position].count_key(key);
        self.net.finish_op(op);
        Ok(D3OpReport {
            messages,
            matches,
            nodes_visited: 1,
            balance_messages: 0,
        })
    }

    /// Range query for `[low, high)`: route to the owner of `low`, then
    /// sweep right over the peer adjacency until the range is covered.
    pub fn search_range(&mut self, low: u64, high: u64) -> Result<D3OpReport> {
        let issuer = self.random_peer().ok_or(D3Error::Empty)?;
        let op = self.net.begin_op("d3.range");
        let lo = low.max(self.domain.low);
        let hi = high.min(self.domain.high);
        let start_key = lo.min(self.domain.high - 1);
        let (mut bucket, mut position, mut messages) =
            self.route_to_owner(op, issuer, start_key)?;
        let mut nodes_visited = 0usize;
        let mut matches = 0usize;
        let mut hop_no = messages as u32;
        let limit = self.peer_list.len() + 2;
        loop {
            let peer = &self.buckets[bucket].peers[position];
            nodes_visited += 1;
            if lo < hi {
                matches += peer.count_in(lo, hi);
            }
            if peer.range.high >= hi || nodes_visited > limit {
                break;
            }
            let from = peer.peer;
            // Advance over the horizontal adjacency: next peer in the
            // bucket, or the head of the next bucket.
            if position + 1 < self.buckets[bucket].len() {
                position += 1;
            } else if bucket + 1 < self.buckets.len() {
                bucket += 1;
                position = 0;
            } else {
                break;
            }
            let to = self.buckets[bucket].peers[position].peer;
            messages += self.hop(op, from, to, &mut hop_no, LinkKind::Bucket);
        }
        self.net.finish_op(op);
        Ok(D3OpReport {
            messages,
            matches,
            nodes_visited,
            balance_messages: 0,
        })
    }

    /// Average messages received per hosting peer at each backbone level
    /// (level 0 = root); bucket members that host no backbone node are
    /// reported one level below the leaves.
    pub fn access_load_by_level(&self) -> Vec<(u32, f64)> {
        let mut levels = Vec::new();
        for level in 0..=self.height {
            let hosts: std::collections::BTreeSet<PeerId> =
                (0..1usize << level).map(|j| self.host(level, j)).collect();
            let total: u64 = hosts.iter().map(|p| self.stats().received_count(*p)).sum();
            levels.push((level, total as f64 / hosts.len().max(1) as f64));
        }
        let heads: std::collections::BTreeSet<PeerId> =
            self.buckets.iter().map(Bucket::head).collect();
        let members: Vec<PeerId> = self
            .peer_list
            .iter()
            .copied()
            .filter(|p| !heads.contains(p))
            .collect();
        if !members.is_empty() {
            let total: u64 = members
                .iter()
                .map(|p| self.stats().received_count(*p))
                .sum();
            levels.push((self.height + 1, total as f64 / members.len() as f64));
        }
        levels
    }

    /// Checks the overlay's structural and balance invariants:
    ///
    /// * the backbone is perfect (`2^height` buckets, none empty);
    /// * the global peer sequence partitions the domain contiguously and
    ///   every stored key lies in its owner's slice, sorted;
    /// * the weight counters equal the recomputed per-subtree sums;
    /// * `bucket_of` and the sorted sampling list agree with the buckets;
    /// * the deterministic balancer's rest invariant holds: no backbone
    ///   node's children violate the peer-count tolerance.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.peer_list.is_empty() {
            return Ok(());
        }
        if self.buckets.len() != 1 << self.height {
            return Err(format!(
                "{} buckets for height {}",
                self.buckets.len(),
                self.height
            ));
        }
        let mut expected_low = self.domain.low;
        let mut seen = 0usize;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if bucket.is_empty() {
                return Err(format!("bucket {b} is empty"));
            }
            for peer in &bucket.peers {
                if peer.range.low != expected_low {
                    return Err(format!(
                        "gap before {}: expected low {expected_low}, found {}",
                        peer.peer, peer.range
                    ));
                }
                expected_low = peer.range.high;
                if !peer.keys.windows(2).all(|w| w[0] <= w[1]) {
                    return Err(format!("{} keys unsorted", peer.peer));
                }
                if let (Some(first), Some(last)) = (peer.keys.first(), peer.keys.last()) {
                    if !peer.range.contains(*first) || !peer.range.contains(*last) {
                        return Err(format!("{} stores keys outside {}", peer.peer, peer.range));
                    }
                }
                if self.bucket_of.get(&peer.peer) != Some(&b) {
                    return Err(format!("bucket_of disagrees for {}", peer.peer));
                }
                if self.peer_list.binary_search(&peer.peer).is_err() {
                    return Err(format!("{} missing from the sampling list", peer.peer));
                }
                seen += 1;
            }
        }
        if expected_low != self.domain.high {
            return Err(format!(
                "partition ends at {expected_low}, not {}",
                self.domain.high
            ));
        }
        if seen != self.peer_list.len() {
            return Err(format!(
                "{seen} peers in buckets, {} in the sampling list",
                self.peer_list.len()
            ));
        }
        // Weight counters match reality.
        for level in (0..=self.height as usize).rev() {
            for node in 0..1usize << level {
                let (peers, items) = if level == self.height as usize {
                    (
                        self.buckets[node].len() as u64,
                        self.buckets[node].item_count(),
                    )
                } else {
                    (
                        self.peer_weights[level + 1][2 * node]
                            + self.peer_weights[level + 1][2 * node + 1],
                        self.item_weights[level + 1][2 * node]
                            + self.item_weights[level + 1][2 * node + 1],
                    )
                };
                if self.peer_weights[level][node] != peers {
                    return Err(format!(
                        "peer weight ({level},{node}) is {}, expected {peers}",
                        self.peer_weights[level][node]
                    ));
                }
                if self.item_weights[level][node] != items {
                    return Err(format!(
                        "item weight ({level},{node}) is {}, expected {items}",
                        self.item_weights[level][node]
                    ));
                }
            }
        }
        // Rest invariant of the deterministic peer balancer.
        for level in 0..self.height as usize {
            for node in 0..1usize << level {
                let left = self.peer_weights[level + 1][2 * node];
                let right = self.peer_weights[level + 1][2 * node + 1];
                if Self::unbalanced(left, right, PEER_RATIO, PEER_SLACK) {
                    return Err(format!(
                        "peer balance violated at ({level},{node}): {left} vs {right}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Builds a [`baton_net::serve::RoutingSnapshot`] of the overlay's
    /// current state for the concurrent serve front-end: slots are the
    /// bucket peers in global key order (bucket order × in-bucket order
    /// partitions the domain), items are the sorted key multisets
    /// run-length-encoded, links carry the in-bucket adjacency
    /// ([`LinkKind::Bucket`]) plus power-of-two jumps between bucket heads
    /// standing in for the backbone ([`LinkKind::Backbone`]), and replicas
    /// are the bucket-sibling replica targets.  Extraction is read-only.
    pub fn build_routing_snapshot(&self) -> baton_net::serve::RoutingSnapshot {
        use baton_net::serve::{ExactPlacement, SnapshotBuilder};

        let mut builder = SnapshotBuilder::new(
            "D3-Tree",
            ExactPlacement::DomainPartition,
            true,
            (self.domain.low, self.domain.high),
        );
        // Slot layout: global in-order peer sequence, with each bucket's
        // first slot remembered as its head.
        let mut heads: Vec<usize> = Vec::with_capacity(self.buckets.len());
        let mut peers_of: Vec<(usize, &BucketPeer)> = Vec::new();
        for bucket in &self.buckets {
            if !bucket.is_empty() {
                heads.push(peers_of.len());
            }
            for peer in &bucket.peers {
                let slot = builder.push_slot(peer.peer.0, peer.range.high, true);
                let mut run: Option<(u64, u64)> = None;
                for &key in &peer.keys {
                    match &mut run {
                        Some((k, count)) if *k == key => *count += 1,
                        _ => {
                            if let Some((k, count)) = run.take() {
                                builder.push_item(k, count);
                            }
                            run = Some((key, 1));
                        }
                    }
                }
                if let Some((k, count)) = run {
                    builder.push_item(k, count);
                }
                builder.seal_slot();
                peers_of.push((slot, peer));
            }
        }
        for (index, head) in heads.iter().enumerate() {
            // Backbone stand-in: bucket heads link at ±2^j bucket strides,
            // giving greedy routing the O(log N) reach an LCA climb has.
            let mut stride = 1usize;
            while stride < heads.len() {
                if index >= stride {
                    builder.link(*head, heads[index - stride], LinkKind::Backbone);
                }
                if index + stride < heads.len() {
                    builder.link(*head, heads[index + stride], LinkKind::Backbone);
                }
                stride *= 2;
            }
        }
        for &(slot, peer) in &peers_of {
            if slot > 0 {
                builder.link(slot, slot - 1, LinkKind::Bucket);
            }
            if slot + 1 < peers_of.len() {
                builder.link(slot, slot + 1, LinkKind::Bucket);
            }
            for target in self.replica_targets(peer.peer) {
                if let Some(t) = builder.slot_of(target.0) {
                    builder.replica(slot, t);
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_a_consistent_tree() {
        for n in [1usize, 2, 5, 13, 64, 200, 500] {
            let system = D3TreeSystem::build(5, n).unwrap();
            assert_eq!(system.node_count(), n);
            system
                .validate()
                .unwrap_or_else(|e| panic!("{n}-node tree invalid: {e}"));
        }
    }

    #[test]
    fn backbone_height_tracks_log_n() {
        let system = D3TreeSystem::build(7, 1000).unwrap();
        let h = system.height();
        assert!((4..=10).contains(&h), "height {h} for 1000 nodes");
        // Average bucket size stays in the Θ(log N) band.
        let avg = system.node_count() as f64 / system.bucket_count() as f64;
        let target = (h + 2) as f64;
        assert!(
            avg <= 2.0 * target + 1.0 && avg >= target / 2.0 - 1.0,
            "avg {avg}"
        );
    }

    #[test]
    fn search_reaches_the_owner_and_counts_matches() {
        let mut system = D3TreeSystem::build(9, 100).unwrap();
        system.insert(123_456).unwrap();
        system.insert(123_456).unwrap();
        let report = system.search_exact(123_456).unwrap();
        assert_eq!(report.matches, 2);
        assert!(report.messages > 0);
        let miss = system.search_exact(654_321).unwrap();
        assert_eq!(miss.matches, 0);
    }

    #[test]
    fn exact_search_is_logarithmic() {
        let mut system = D3TreeSystem::build(11, 1000).unwrap();
        let mut total = 0u64;
        let queries = 200u64;
        for i in 0..queries {
            let key = 1 + (i * 4_999_999) % 999_999_998;
            total += system.search_exact(key).unwrap().messages;
        }
        let mean = total as f64 / queries as f64;
        let bound = 3.0 * (system.node_count() as f64).log2() + 8.0;
        assert!(mean <= bound, "mean exact cost {mean} exceeds {bound}");
    }

    #[test]
    fn range_query_is_exact_and_sweeps_adjacency() {
        let mut system = D3TreeSystem::build(13, 120).unwrap();
        let keys: Vec<u64> = (0..500u64).map(|i| 1 + i * 1_999_993).collect();
        for k in &keys {
            system.insert(*k).unwrap();
        }
        let (lo, hi) = (100_000_000u64, 400_000_000u64);
        let expected = keys.iter().filter(|k| (lo..hi).contains(*k)).count();
        let report = system.search_range(lo, hi).unwrap();
        assert_eq!(report.matches, expected);
        assert!(report.nodes_visited >= 1);
        system.validate().unwrap();
    }

    #[test]
    fn churn_keeps_structure_valid_and_balanced() {
        let mut system = D3TreeSystem::build(15, 80).unwrap();
        for round in 0..200 {
            match round % 5 {
                0 | 1 if system.node_count() > 4 => {
                    system.leave_random().unwrap();
                }
                2 if system.node_count() > 4 => {
                    system.fail_random().unwrap();
                }
                _ => {
                    system.join_random().unwrap();
                }
            }
            system
                .validate()
                .unwrap_or_else(|e| panic!("invalid after round {round}: {e}"));
        }
    }

    #[test]
    fn failures_lose_the_victims_items_only() {
        let mut system = D3TreeSystem::build(17, 40).unwrap();
        for i in 0..400u64 {
            system.insert(1 + i * 2_222_221).unwrap();
        }
        let before = system.total_items();
        let report = system.fail_random().unwrap();
        assert_eq!(system.total_items() + report.lost_items, before);
        assert_eq!(system.node_count(), 39);
        system.validate().unwrap();
        // A graceful leave loses nothing.
        let leave = system.leave_random().unwrap();
        assert_eq!(leave.lost_items, 0);
        assert_eq!(system.total_items(), before - report.lost_items);
    }

    #[test]
    fn skewed_inserts_trigger_item_redistribution() {
        let mut system = D3TreeSystem::build(19, 60).unwrap();
        let mut balance = 0u64;
        // Hammer a narrow slice of the domain: the weight counters must
        // eventually trip the deterministic redistribution.
        for i in 0..800u64 {
            balance += system
                .insert(1_000 + (i % 97) * 13)
                .unwrap()
                .balance_messages;
        }
        assert!(balance > 0, "no redistribution under heavy skew");
        assert!(system.balance_shift_histogram().total() > 0);
        system.validate().unwrap();
    }

    #[test]
    fn duplicate_pileup_at_the_span_top_does_not_break_redistribution() {
        // Hammering the last key of the domain saturates every slice
        // boundary of the owning subtree at the span top; redistribution
        // must degrade to empty tail slices, not panic.
        let mut system = D3TreeSystem::build(3, 60).unwrap();
        let top = 999_999_999u64;
        for _ in 0..500 {
            system.insert(top).unwrap();
        }
        assert_eq!(system.search_exact(top).unwrap().matches, 500);
        system.validate().unwrap();
        // The same pile-up at the bottom of the domain.
        for _ in 0..500 {
            system.insert(1).unwrap();
        }
        assert_eq!(system.search_exact(1).unwrap().matches, 500);
        system.validate().unwrap();
    }

    #[test]
    fn errors_for_bad_inputs() {
        let mut system = D3TreeSystem::build(21, 3).unwrap();
        assert!(matches!(
            system.search_exact(0),
            Err(D3Error::KeyOutOfDomain(0))
        ));
        let mut empty = D3TreeSystem::new(1);
        assert!(matches!(empty.search_range(1, 2), Err(D3Error::Empty)));
        let mut single = D3TreeSystem::build(23, 1).unwrap();
        assert_eq!(single.leave_random().unwrap_err(), D3Error::LastNode);
    }

    #[test]
    fn weight_descent_fills_light_buckets() {
        let system = D3TreeSystem::build(25, 200).unwrap();
        system.validate().unwrap();
        let sizes: Vec<usize> = system.buckets.iter().map(Bucket::len).collect();
        let (min, max) = (
            *sizes.iter().min().unwrap() as u64,
            *sizes.iter().max().unwrap() as u64,
        );
        // Sibling tolerance propagated over the whole tree keeps the global
        // spread narrow.
        assert!(
            max <= PEER_RATIO * min + PEER_SLACK * (system.height() as u64 + 1),
            "bucket sizes spread too far: {min}..{max}"
        );
    }
}
