//! Half-open key ranges for the D3-Tree baseline.
//!
//! Deliberately minimal and independent of `baton-core`'s `KeyRange` (and of
//! `baton-mtree`'s `MRange`), so the baselines stay decoupled from the
//! system under study and from each other.

/// A half-open interval of keys `[low, high)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DRange {
    /// Inclusive lower bound.
    pub low: u64,
    /// Exclusive upper bound.
    pub high: u64,
}

impl DRange {
    /// Creates the range `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low > high`.
    pub fn new(low: u64, high: u64) -> Self {
        assert!(low <= high, "invalid range [{low}, {high})");
        Self { low, high }
    }

    /// `true` if `key` lies in `[low, high)`.
    pub fn contains(self, key: u64) -> bool {
        key >= self.low && key < self.high
    }

    /// `true` if the two ranges share a key.
    pub fn intersects(self, other: DRange) -> bool {
        self.low < other.high && other.low < self.high
    }

    /// Number of keys in the range.
    pub fn width(self) -> u64 {
        self.high - self.low
    }
}

impl std::fmt::Display for DRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_intersects_width() {
        let r = DRange::new(10, 20);
        assert!(r.contains(10) && !r.contains(20));
        assert!(r.intersects(DRange::new(19, 30)));
        assert!(!r.intersects(DRange::new(20, 30)));
        assert_eq!(r.width(), 10);
        assert_eq!(r.to_string(), "[10, 20)");
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn reversed_range_panics() {
        DRange::new(5, 1);
    }
}
