//! The generic experiment driver: which overlays to run and how to build
//! and load them.
//!
//! Every figure driver in [`crate::figures`] is written against
//! `dyn Overlay` and a list of [`OverlaySpec`]s — there is exactly **one**
//! measurement loop per experiment, not one per system.  Adding a new
//! baseline to every figure therefore means adding one [`OverlaySpec`]
//! here (and implementing [`Overlay`] for the system), nothing else.
//!
//! The list can be narrowed process-wide with [`set_overlay_filter`] (the
//! `reproduce --overlays` and `perf --overlays` flags), so a single overlay
//! can be run or debugged in isolation without touching any driver.

use std::sync::RwLock;

use baton_chord::ChordSystem;
use baton_core::{BatonConfig, BatonSystem, LoadBalanceConfig};
use baton_d3tree::D3TreeSystem;
use baton_mtree::MTreeSystem;
use baton_net::{LinkKind, Overlay, SimRng};
use baton_workload::{runner, DatasetPlan, KeyDistribution};

use crate::profile::Profile;

/// An overlay constructor: profile, node count, seed.
type BuildFn = fn(&Profile, usize, u64) -> Box<dyn Overlay>;

/// How to build one overlay system for an experiment.
pub struct OverlaySpec {
    /// Series label used in figures ("BATON", "Chord", …).  Matches
    /// [`Overlay::name`] of the built system.
    pub series: &'static str,
    build: BuildFn,
    /// Direct deterministic construction, for overlays that offer one
    /// (`OverlayCapabilities::bulk_build`).  Behaviourally equivalent to
    /// `build` but not byte-identical, so it is only taken when explicitly
    /// requested.
    bulk: Option<BuildFn>,
    /// The overlay's replication capability.
    pub replication: Replication,
    /// The link-kind taxonomy this overlay's route recorder emits: the
    /// tagged kinds of its send sites, plus `Notify` (fire-and-forget
    /// notifications) and `Other` (untagged protocol sends).  `--list`
    /// prints this matrix.
    pub link_kinds: &'static [LinkKind],
    /// What the overlay's routing snapshot can serve; `--list` prints this
    /// matrix too.
    pub serve: ServeSupport,
}

/// Serve-mode capabilities of one overlay: whether it exports a
/// [`baton_net::RoutingSnapshot`] and which query shapes the snapshot can
/// answer without touching the event engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeSupport {
    /// [`Overlay::routing_snapshot`] returns `Some`.
    pub snapshot: bool,
    /// Exact-match queries over the snapshot.
    pub exact: bool,
    /// Range queries over the snapshot — key-ordered partitions only, so
    /// every overlay but Chord (hashed placement destroys key order).
    pub range: bool,
}

/// Parses the value of a `--threads` flag, shared by `reproduce`, `perf`
/// and `serve-bench` so all three agree on validation: the value is
/// required, must be an unsigned integer, and must be at least 1.  When the
/// flag is absent entirely, binaries default to
/// [`baton_net::default_threads`] (available parallelism).
pub fn parse_threads(value: Option<String>) -> Result<usize, String> {
    let value = value.ok_or_else(|| "--threads needs a value".to_owned())?;
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => Err("--threads needs at least 1".to_owned()),
        Err(_) => Err(format!(
            "--threads needs an unsigned integer, got '{value}'"
        )),
    }
}

/// How many replicas an overlay's placement rule can maintain: each key
/// lives at its routed owner plus up to `max_k − 1` deterministic replica
/// peers (adjacent links, ring successors or bucket siblings, depending on
/// the overlay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replication {
    /// Largest supported replication degree (1 = owner only).
    pub max_k: usize,
}

impl Replication {
    /// Clamps a requested degree to what this overlay supports.
    pub fn clamp(&self, k: usize) -> usize {
        k.clamp(1, self.max_k)
    }
}

impl OverlaySpec {
    /// Builds an overlay of `n` nodes for the given profile and seed.
    pub fn build(&self, profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
        (self.build)(profile, n, seed)
    }

    /// `true` if this overlay registers a bulk constructor.
    pub fn supports_bulk(&self) -> bool {
        self.bulk.is_some()
    }

    /// Builds an overlay of `n` nodes through the bulk fast path, falling
    /// back to the join-by-join build for overlays without one.
    pub fn build_bulk(&self, profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
        match self.bulk {
            Some(bulk) => bulk(profile, n, seed),
            None => self.build(profile, n, seed),
        }
    }
}

fn baton_config(profile: &Profile, n: usize) -> BatonConfig {
    // Load-balancing thresholds sized for the profile's expected average
    // load so that the skew experiments can trigger balancing while the
    // uniform ones mostly do not, as in the paper.
    let avg_load = (profile.dataset_size(n) / n.max(1)).max(4);
    BatonConfig::default().with_load_balance(LoadBalanceConfig::for_average_load(avg_load))
}

fn build_baton(profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    let config = baton_config(profile, n);
    Box::new(BatonSystem::build(config, seed, n).expect("building the BATON overlay cannot fail"))
}

fn bulk_baton(profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    let config = baton_config(profile, n);
    Box::new(
        BatonSystem::bulk_build(config, seed, n)
            .expect("bulk-building the BATON overlay cannot fail"),
    )
}

fn build_chord(_profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    Box::new(ChordSystem::build(seed, n).expect("building the Chord ring cannot fail"))
}

fn bulk_chord(_profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    Box::new(ChordSystem::bulk_build(seed, n).expect("bulk-building the Chord ring cannot fail"))
}

fn build_mtree(_profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    Box::new(MTreeSystem::build(seed, n).expect("building the multiway tree cannot fail"))
}

fn build_d3tree(_profile: &Profile, n: usize, seed: u64) -> Box<dyn Overlay> {
    Box::new(D3TreeSystem::build(seed, n).expect("building the D3-Tree cannot fail"))
}

/// The system under study: BATON.  Figures 8(f)–(i) plot it alone, as the
/// paper does; the overlay filter does not apply to them.
pub fn reference_overlay() -> OverlaySpec {
    OverlaySpec {
        series: super::figures::SERIES_BATON,
        build: build_baton,
        bulk: Some(bulk_baton),
        replication: Replication {
            max_k: baton_core::BatonSystem::MAX_REPLICATION,
        },
        link_kinds: &[
            LinkKind::Parent,
            LinkKind::Child,
            LinkKind::Adjacent,
            LinkKind::RoutingTable,
            LinkKind::Notify,
            LinkKind::Other,
        ],
        serve: ServeSupport {
            snapshot: true,
            exact: true,
            range: true,
        },
    }
}

/// Every known comparison system, unfiltered, in series order: BATON, the
/// paper's two baselines, then the post-paper baselines.
pub fn all_overlays() -> Vec<OverlaySpec> {
    vec![
        reference_overlay(),
        OverlaySpec {
            series: super::figures::SERIES_CHORD,
            build: build_chord,
            bulk: Some(bulk_chord),
            replication: Replication {
                max_k: ChordSystem::MAX_REPLICATION,
            },
            link_kinds: &[
                LinkKind::Successor,
                LinkKind::Finger,
                LinkKind::Notify,
                LinkKind::Other,
            ],
            serve: ServeSupport {
                snapshot: true,
                exact: true,
                range: false,
            },
        },
        OverlaySpec {
            series: super::figures::SERIES_MTREE,
            build: build_mtree,
            bulk: None,
            replication: Replication {
                max_k: MTreeSystem::MAX_REPLICATION,
            },
            link_kinds: &[
                LinkKind::Parent,
                LinkKind::Child,
                LinkKind::Neighbor,
                LinkKind::Notify,
                LinkKind::Other,
            ],
            serve: ServeSupport {
                snapshot: true,
                exact: true,
                range: true,
            },
        },
        OverlaySpec {
            series: super::figures::SERIES_D3TREE,
            build: build_d3tree,
            bulk: None,
            replication: Replication {
                max_k: D3TreeSystem::MAX_REPLICATION,
            },
            link_kinds: &[
                LinkKind::Backbone,
                LinkKind::Bucket,
                LinkKind::Notify,
                LinkKind::Other,
            ],
            serve: ServeSupport {
                snapshot: true,
                exact: true,
                range: true,
            },
        },
    ]
}

/// Series names of every known overlay, in the order of [`all_overlays`].
pub fn overlay_names() -> Vec<&'static str> {
    all_overlays().into_iter().map(|s| s.series).collect()
}

/// Process-wide overlay selection (`None` = every overlay).  Set once by a
/// binary before running experiments; not intended for concurrent
/// mutation.
static OVERLAY_FILTER: RwLock<Option<Vec<String>>> = RwLock::new(None);

/// Restricts [`standard_overlays`] to the given series names
/// (case-insensitive).  An empty list clears the filter.  Returns an error
/// naming the first unknown overlay.
pub fn set_overlay_filter(names: &[String]) -> Result<(), String> {
    let known = overlay_names();
    let mut selected = Vec::new();
    for name in names {
        match known.iter().find(|k| k.eq_ignore_ascii_case(name)) {
            Some(series) => {
                if !selected.contains(&(*series).to_owned()) {
                    selected.push((*series).to_owned());
                }
            }
            None => return Err(format!("unknown overlay '{name}'; available: {known:?}")),
        }
    }
    let mut filter = OVERLAY_FILTER.write().expect("filter lock");
    *filter = if selected.is_empty() {
        None
    } else {
        Some(selected)
    };
    Ok(())
}

/// Clears any process-wide overlay filter.
pub fn clear_overlay_filter() {
    *OVERLAY_FILTER.write().expect("filter lock") = None;
}

/// The systems of the comparison — [`all_overlays`] narrowed by any
/// process-wide filter ([`set_overlay_filter`]).
pub fn standard_overlays() -> Vec<OverlaySpec> {
    let filter = OVERLAY_FILTER.read().expect("filter lock");
    match filter.as_deref() {
        None => all_overlays(),
        Some(names) => all_overlays()
            .into_iter()
            .filter(|spec| names.iter().any(|n| n == spec.series))
            .collect(),
    }
}

/// Bulk-loads an overlay with the profile-scaled dataset, returning the
/// inserted `(key, value)` pairs.
///
/// Works on any [`Overlay`]; the paper's `1000 × N` volume is scaled by the
/// profile's `data_scale`.
pub fn load_overlay(
    profile: &Profile,
    overlay: &mut dyn Overlay,
    distribution: KeyDistribution,
    seed: u64,
) -> Vec<(u64, u64)> {
    let data = generate_dataset(profile, overlay.node_count(), distribution, seed);
    runner::bulk_load(overlay, &data).expect("bulk load cannot fail");
    data
}

/// Like [`load_overlay`], but places the dataset directly into the owning
/// nodes' stores when the overlay has a zero-message direct path
/// ([`Overlay::load_direct`]), falling back to routed inserts otherwise.
/// Bulk-built scenario runs use this so per-repetition setup cost does not
/// swamp the workload being measured; the default join-built path never
/// takes it.
pub fn load_overlay_direct(
    profile: &Profile,
    overlay: &mut dyn Overlay,
    distribution: KeyDistribution,
    seed: u64,
) -> Vec<(u64, u64)> {
    let data = {
        let _t = baton_net::profiler::scope("load.generate");
        generate_dataset(profile, overlay.node_count(), distribution, seed)
    };
    let _t = baton_net::profiler::scope("load.place");
    if !overlay.load_direct(&data) {
        runner::bulk_load(overlay, &data).expect("bulk load cannot fail");
    }
    data
}

/// The profile-scaled `(key, value)` dataset both load paths insert.
fn generate_dataset(
    profile: &Profile,
    node_count: usize,
    distribution: KeyDistribution,
    seed: u64,
) -> Vec<(u64, u64)> {
    let plan = DatasetPlan {
        values_per_node: 1000,
        distribution,
    }
    .scaled(profile.data_scale);
    let mut rng = SimRng::seeded(seed ^ 0xDA7A);
    plan.generate(&mut rng, node_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_overlays_cover_every_comparison_system() {
        let profile = Profile::smoke();
        let specs = standard_overlays();
        assert_eq!(specs.len(), 4);
        let mut range_capable = 0;
        for spec in &specs {
            let overlay = spec.build(&profile, 15, 7);
            assert_eq!(overlay.name(), spec.series);
            assert_eq!(overlay.node_count(), 15);
            overlay.validate().unwrap();
            if overlay.capabilities().range_queries {
                range_capable += 1;
            }
        }
        // BATON, the multiway tree and the D3-Tree; Chord cannot answer
        // range queries.
        assert_eq!(range_capable, 3);
    }

    #[test]
    fn every_overlay_accepts_its_advertised_replication_range() {
        let profile = Profile::smoke();
        for spec in all_overlays() {
            let max_k = spec.replication.max_k;
            assert!(max_k >= 2, "{}: k = 2 must be available", spec.series);
            let mut overlay = spec.build(&profile, 20, 11);
            assert_eq!(overlay.replication(), 1, "{}", spec.series);
            for k in 1..=max_k {
                overlay
                    .set_replication(k)
                    .unwrap_or_else(|e| panic!("{} rejected k = {k}: {e}", spec.series));
                assert_eq!(overlay.replication(), k);
            }
            assert!(
                overlay.set_replication(max_k + 1).is_err(),
                "{} accepted k beyond its advertised max {max_k}",
                spec.series
            );
            assert_eq!(spec.replication.clamp(0), 1);
            assert_eq!(spec.replication.clamp(max_k + 5), max_k);
        }
    }

    #[test]
    fn bulk_builds_agree_with_the_advertised_capability() {
        let profile = Profile::smoke();
        for spec in all_overlays() {
            let joined = spec.build(&profile, 12, 5);
            assert_eq!(
                spec.supports_bulk(),
                joined.capabilities().bulk_build,
                "spec registry and trait capability disagree for {}",
                spec.series
            );
            // build_bulk always yields a usable overlay: the fast path when
            // one is registered, the join-by-join build otherwise.
            let bulk = spec.build_bulk(&profile, 12, 5);
            assert_eq!(bulk.name(), spec.series);
            assert_eq!(bulk.node_count(), 12);
            bulk.validate().unwrap();
            if spec.supports_bulk() {
                assert_eq!(bulk.stats().total_sent(), 0);
            }
        }
    }

    #[test]
    fn load_overlay_scales_with_the_profile() {
        let profile = Profile::smoke();
        for spec in standard_overlays() {
            let mut overlay = spec.build(&profile, 10, 3);
            let data = load_overlay(&profile, &mut *overlay, KeyDistribution::Uniform, 3);
            assert_eq!(data.len(), profile.dataset_size(10));
            assert_eq!(overlay.total_items(), data.len());
        }
    }

    #[test]
    fn serve_matrix_matches_what_snapshots_actually_support() {
        let profile = Profile::smoke();
        for spec in all_overlays() {
            let overlay = spec.build(&profile, 15, 7);
            let snapshot = overlay.routing_snapshot();
            assert_eq!(
                snapshot.is_some(),
                spec.serve.snapshot,
                "{}: spec registry and routing_snapshot() disagree",
                spec.series
            );
            if let Some(snapshot) = snapshot {
                assert!(spec.serve.exact, "{}: snapshots serve exact", spec.series);
                assert_eq!(
                    snapshot.range_supported(),
                    spec.serve.range,
                    "{}: spec registry and snapshot range support disagree",
                    spec.series
                );
            }
        }
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage() {
        assert_eq!(parse_threads(Some("1".to_owned())), Ok(1));
        assert_eq!(parse_threads(Some("16".to_owned())), Ok(16));
        assert!(parse_threads(Some("0".to_owned())).is_err());
        assert!(parse_threads(Some("-2".to_owned())).is_err());
        assert!(parse_threads(Some("two".to_owned())).is_err());
        assert!(parse_threads(None).is_err());
    }

    #[test]
    fn overlay_filter_validates_names() {
        // Only validation is exercised here: mutating the process-wide
        // filter would race the other driver tests.
        assert!(set_overlay_filter(&["nonsense".to_owned()]).is_err());
        assert_eq!(
            overlay_names(),
            vec!["BATON", "Chord", "Multiway tree", "D3-Tree"]
        );
    }
}
