//! Rendering a batch of figure results as a report.

use std::fmt::Write as _;

use crate::result::FigureResult;

/// Renders a set of figure results as a single text report.
pub fn render_report(results: &[FigureResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BATON reproduction — {} figure(s) regenerated\n",
        results.len()
    );
    for result in results {
        out.push_str(&result.to_table());
        out.push('\n');
    }
    out
}

/// Renders a set of figure results as a JSON document (an array of figures).
pub fn render_json(results: &[FigureResult]) -> String {
    serde_json::to_string_pretty(results).expect("figure results serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SeriesPoint;

    fn sample() -> Vec<FigureResult> {
        let mut fig = FigureResult::new("8a", "sample", "nodes", "messages");
        fig.points.push(SeriesPoint::at(10.0).set("BATON", 3.5));
        vec![fig]
    }

    #[test]
    fn text_report_contains_every_figure() {
        let report = render_report(&sample());
        assert!(report.contains("Figure 8a"));
        assert!(report.contains("BATON"));
        assert!(report.contains("3.50"));
    }

    #[test]
    fn json_report_roundtrips() {
        let json = render_json(&sample());
        let parsed: Vec<FigureResult> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, sample());
    }
}
