//! Rendering a batch of figure results as a report.

use std::fmt::Write as _;

use crate::result::FigureResult;
use crate::scenario::ScenarioResult;

/// Renders a set of figure results as a single text report.
pub fn render_report(results: &[FigureResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BATON reproduction — {} figure(s) regenerated\n",
        results.len()
    );
    for result in results {
        out.push_str(&result.to_table());
        out.push('\n');
    }
    out
}

/// Renders a set of figure results as a JSON document (an array of figures).
///
/// The encoder is hand-rolled (the build environment cannot fetch
/// `serde_json`); it emits standards-compliant JSON with escaped strings and
/// `null` for non-finite values.
pub fn render_json(results: &[FigureResult]) -> String {
    let mut out = String::from("[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\n    \"id\": {},", json_string(&result.id));
        let _ = write!(out, "\n    \"title\": {},", json_string(&result.title));
        let _ = write!(out, "\n    \"x_label\": {},", json_string(&result.x_label));
        let _ = write!(out, "\n    \"y_label\": {},", json_string(&result.y_label));
        out.push_str("\n    \"points\": [");
        for (j, point) in result.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"x\": {}, \"values\": {{",
                json_number(point.x)
            );
            for (k, (name, value)) in point.values.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(name), json_number(*value));
            }
            out.push_str("}}");
        }
        if !result.points.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
    }
    if !results.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders a set of scenario results as a JSON document (an array of
/// scenarios), mirroring [`render_json`] for the time-domain reports.
///
/// The byte-level layout of this rendering is pinned by
/// `tests/fixtures/scenario_smoke_seed.json`: the legacy scenarios must
/// produce identical bytes through any future engine refactor.
pub fn render_scenarios_json(results: &[ScenarioResult]) -> String {
    let mut out = String::from("[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\n    \"id\": {},", json_string(&result.id));
        let _ = write!(out, "\n    \"title\": {},", json_string(&result.title));
        out.push_str("\n    \"series\": [");
        for (j, series) in result.series.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n      {");
            let _ = write!(out, "\"overlay\": {},", json_string(&series.overlay));
            let _ = write!(out, " \"throughput\": {},", json_number(series.throughput));
            let _ = write!(
                out,
                " \"virtual_seconds\": {},",
                json_number(series.virtual_seconds)
            );
            let _ = write!(out, " \"messages\": {},", series.messages);
            // Only scenarios with an active fault plan carry the key: the
            // legacy fixtures (zero kills) stay byte-identical.
            if series.fault_kills > 0 {
                let _ = write!(out, " \"fault_kills\": {},", series.fault_kills);
            }
            // Availability keys appear only once an operation was dispatched
            // inside a fault window, and repair keys only once a deferred
            // repair completed: faultless legacy scenarios (and immediate-
            // kill plans) carry neither, keeping their fixtures stable.
            if let Some(availability) = series.availability {
                let _ = write!(out, " \"availability\": {},", json_number(availability));
                let _ = write!(out, " \"window_attempts\": {},", series.window_attempts);
                out.push_str(" \"unavailable\": {");
                for (k, (class, count)) in series.unavailable.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_string(class), count);
                }
                out.push_str("},");
            }
            if series.repairs > 0 {
                let _ = write!(
                    out,
                    " \"repairs\": {}, \"repair_mean_ms\": {}, \"repair_p95_ms\": {},",
                    series.repairs,
                    json_number(series.repair_mean_ms),
                    json_number(series.repair_p95_ms)
                );
            }
            // The sampled time series appears only when the plan carried a
            // metrics config (the two fault scenarios): legacy fixtures
            // never see the key.  One object per virtual-time tick.
            if !series.timeseries.is_empty() {
                out.push_str("\n       \"timeseries\": [");
                for (k, sample) in series.timeseries.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n        {{\"t_s\": {}, \"executed\": {}, \"ops_per_sec\": {}, \
                         \"nodes\": {}, \"in_flight\": {}, \"unavailable\": {}, \
                         \"repair_backlog\": {}, \"state_bytes\": {}, \"classes\": {{",
                        json_number(sample.at.as_secs_f64()),
                        sample.executed,
                        json_number(sample.ops_per_sec),
                        sample.node_count,
                        sample.in_flight,
                        sample.unavailable,
                        sample.repair_backlog,
                        sample.state_bytes
                    );
                    for (c, (class, summary)) in sample.classes.iter().enumerate() {
                        if c > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(
                            out,
                            "{}: {{\"count\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \
                             \"p99_ms\": {}}}",
                            json_string(class),
                            summary.count,
                            json_number(summary.p50.as_millis_f64()),
                            json_number(summary.p95.as_millis_f64()),
                            json_number(summary.p99.as_millis_f64())
                        );
                    }
                    out.push_str("}}");
                }
                out.push_str("\n       ],");
            }
            out.push_str(" \"skipped\": {");
            for (k, (class, count)) in series.skipped.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(class), count);
            }
            out.push_str("},");
            out.push_str("\n       \"classes\": [");
            for (k, class) in series.classes.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{\"class\": {}, \"count\": {}, \"mean_ms\": {}, \
                     \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}",
                    json_string(&class.class),
                    class.count,
                    json_number(class.mean_ms),
                    json_number(class.p50_ms),
                    json_number(class.p95_ms),
                    json_number(class.p99_ms)
                );
            }
            if !series.classes.is_empty() {
                out.push_str("\n       ");
            }
            out.push_str("]}");
        }
        if !result.series.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
    }
    if !results.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Quotes and escapes `s` as a JSON string literal.
///
/// Shared by every hand-rolled JSON emitter in the workspace (the build
/// environment cannot fetch `serde_json`); keep escaping fixes here.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // `{v}` prints integral f64s without a fraction ("40"), which is
        // still valid JSON and round-trips exactly.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SeriesPoint;

    fn sample() -> Vec<FigureResult> {
        let mut fig = FigureResult::new("8a", "sample", "nodes", "messages");
        fig.points.push(SeriesPoint::at(10.0).set("BATON", 3.5));
        vec![fig]
    }

    #[test]
    fn text_report_contains_every_figure() {
        let report = render_report(&sample());
        assert!(report.contains("Figure 8a"));
        assert!(report.contains("BATON"));
        assert!(report.contains("3.50"));
    }

    #[test]
    fn json_report_has_every_field_and_balanced_brackets() {
        let json = render_json(&sample());
        for needle in [
            "\"id\": \"8a\"",
            "\"title\": \"sample\"",
            "\"x_label\": \"nodes\"",
            "\"y_label\": \"messages\"",
            "\"x\": 10",
            "\"BATON\": 3.5",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
    }

    #[test]
    fn json_escapes_strings_and_non_finite_values() {
        let mut fig = FigureResult::new("8x", "quote \" and \\ back\nslash", "x", "y");
        fig.points
            .push(SeriesPoint::at(1.0).set("series", f64::NAN));
        let json = render_json(&[fig]);
        assert!(json.contains("quote \\\" and \\\\ back\\nslash"));
        assert!(json.contains("\"series\": null"));
    }

    #[test]
    fn empty_result_set_renders_as_empty_array() {
        assert_eq!(render_json(&[]), "[]");
    }
}
