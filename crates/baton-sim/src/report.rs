//! Rendering a batch of figure results as a report.

use std::fmt::Write as _;

use crate::result::FigureResult;

/// Renders a set of figure results as a single text report.
pub fn render_report(results: &[FigureResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BATON reproduction — {} figure(s) regenerated\n",
        results.len()
    );
    for result in results {
        out.push_str(&result.to_table());
        out.push('\n');
    }
    out
}

/// Renders a set of figure results as a JSON document (an array of figures).
///
/// The encoder is hand-rolled (the build environment cannot fetch
/// `serde_json`); it emits standards-compliant JSON with escaped strings and
/// `null` for non-finite values.
pub fn render_json(results: &[FigureResult]) -> String {
    let mut out = String::from("[");
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\n    \"id\": {},", json_string(&result.id));
        let _ = write!(out, "\n    \"title\": {},", json_string(&result.title));
        let _ = write!(out, "\n    \"x_label\": {},", json_string(&result.x_label));
        let _ = write!(out, "\n    \"y_label\": {},", json_string(&result.y_label));
        out.push_str("\n    \"points\": [");
        for (j, point) in result.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"x\": {}, \"values\": {{",
                json_number(point.x)
            );
            for (k, (name, value)) in point.values.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(name), json_number(*value));
            }
            out.push_str("}}");
        }
        if !result.points.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }");
    }
    if !results.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Quotes and escapes `s` as a JSON string literal.
///
/// Shared by every hand-rolled JSON emitter in the workspace (the build
/// environment cannot fetch `serde_json`); keep escaping fixes here.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // `{v}` prints integral f64s without a fraction ("40"), which is
        // still valid JSON and round-trips exactly.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SeriesPoint;

    fn sample() -> Vec<FigureResult> {
        let mut fig = FigureResult::new("8a", "sample", "nodes", "messages");
        fig.points.push(SeriesPoint::at(10.0).set("BATON", 3.5));
        vec![fig]
    }

    #[test]
    fn text_report_contains_every_figure() {
        let report = render_report(&sample());
        assert!(report.contains("Figure 8a"));
        assert!(report.contains("BATON"));
        assert!(report.contains("3.50"));
    }

    #[test]
    fn json_report_has_every_field_and_balanced_brackets() {
        let json = render_json(&sample());
        for needle in [
            "\"id\": \"8a\"",
            "\"title\": \"sample\"",
            "\"x_label\": \"nodes\"",
            "\"y_label\": \"messages\"",
            "\"x\": 10",
            "\"BATON\": 3.5",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
    }

    #[test]
    fn json_escapes_strings_and_non_finite_values() {
        let mut fig = FigureResult::new("8x", "quote \" and \\ back\nslash", "x", "y");
        fig.points
            .push(SeriesPoint::at(1.0).set("series", f64::NAN));
        let json = render_json(&[fig]);
        assert!(json.contains("quote \\\" and \\\\ back\\nslash"));
        assert!(json.contains("\"series\": null"));
    }

    #[test]
    fn empty_result_set_renders_as_empty_array() {
        assert_eq!(render_json(&[]), "[]");
    }
}
