//! Time-domain scenarios: virtual latency and throughput, measured with the
//! discrete-event engine — the report section the paper's count-only
//! evaluation cannot produce.
//!
//! A scenario is *declared*, not hand-rolled: a [`ScenarioSpec`] pairs an
//! identifier with a function that builds a [`ScenarioPlan`] — the network
//! size, a [`LatencyPlan`](baton_net::LatencyPlan) (possibly topology-aware,
//! with regions and timed link degradations), a
//! [`PhasedWorkload`](baton_workload::PhasedWorkload) (per-phase rates and
//! key distributions) and a [`FaultPlan`](baton_workload::FaultPlan) (timed
//! correlated faults).  One generic engine ([`run_plan`]) drives every
//! registered overlay through any plan, so a new scenario is a ~30-line spec
//! and a new overlay appears in every scenario by registration alone —
//! exactly how [`OverlaySpec`](crate::OverlaySpec) works for the figures.
//!
//! Registered scenarios (see [`specs`] for the plans):
//!
//! | id | stress |
//! |---|---|
//! | `latency_under_churn` | 10%/min churn under an open-loop query mix |
//! | `flash_crowd` | keys collapse onto a hot 1% slice for 20s |
//! | `regional_failure` | half of one region fails at once, then refills |
//! | `degraded_links` | inter-region latency ramps 5× mid-run |
//! | `skew_ramp` | Zipf read/write mix whose skew tightens over time |
//! | `cascading_failure` | two staggered regional waves under timed repair |

pub mod specs;

use std::fmt::Write as _;

use baton_net::{SimRng, TraceBuffer, TraceConfig};
use baton_workload::{run_phased_with_metrics, LatencySummary, MetricsSample, OpClass};

use crate::driver::{load_overlay, load_overlay_direct, standard_overlays};
use crate::profile::Profile;

pub use specs::{BuildKind, ScenarioPlan};

/// Latency percentiles of one operation class, in milliseconds of virtual
/// time.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassLatency {
    /// Operation class name (`"search"`, `"join"`, …).
    pub class: String,
    /// Completed operations of the class.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
}

/// One overlay's row of a scenario: per-class latency percentiles plus
/// throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSeries {
    /// Overlay name ("BATON", "Chord", …).
    pub overlay: String,
    /// Per-class latency summaries, in class-name order.
    pub classes: Vec<ClassLatency>,
    /// Completed operations per virtual second, averaged over repetitions.
    pub throughput: f64,
    /// Virtual seconds the run covered (averaged over repetitions).
    pub virtual_seconds: f64,
    /// Total messages across all repetitions.
    pub messages: u64,
    /// Operations skipped, broken out per [`OpClass`] (in class order), so
    /// "Chord skipped ranges" is distinguishable from "node-floor skipped
    /// leaves".  Classes with zero skips are omitted.
    pub skipped: Vec<(String, u64)>,
    /// Peers killed by the scenario's fault plan across all repetitions
    /// (zero for scenarios without injected faults; under an immediate-kill
    /// plan the kills also count toward the `fail` class).
    pub fault_kills: u64,
    /// Operations that hit an availability miss anywhere in the run, per
    /// class (classes with zero omitted): attempted, reached a dead
    /// not-yet-repaired peer, and no replica could answer.
    pub unavailable: Vec<(String, u64)>,
    /// Operations dispatched inside a fault-assessment window
    /// (`[fault.at, fault.at + policy.slow]` per fault event), across all
    /// repetitions — the denominator of `availability`.
    pub window_attempts: u64,
    /// Fraction of fault-window dispatches that succeeded; `None` when no
    /// operation arrived during a window (every faultless scenario).  The
    /// numerator counts only in-window misses, so a straggling failure
    /// after the window closes appears in `unavailable` but not here.
    pub availability: Option<f64>,
    /// Deferred repairs completed across all repetitions.
    pub repairs: u64,
    /// Mean time from kill to completed repair, in virtual milliseconds
    /// (0 when `repairs` is 0).
    pub repair_mean_ms: f64,
    /// 95th-percentile time-to-repair, in virtual milliseconds.
    pub repair_p95_ms: f64,
    /// **Wall-clock** time spent executing deferred repairs across all
    /// repetitions.  Never rendered into the JSON/CSV/table reports (those
    /// stay deterministic); the perf harness cites it in the `avail_k*`
    /// rows so slow-path repair cost is not misread as query throughput.
    pub repair_wall: std::time::Duration,
    /// Virtual-time metrics samples from the overlay's *first* repetition
    /// (repetitions diverge, so their trajectories cannot be averaged) —
    /// empty unless the plan carries a
    /// [`MetricsConfig`](baton_workload::MetricsConfig).
    pub timeseries: Vec<MetricsSample>,
}

impl ScenarioSeries {
    /// Total operations skipped across all classes.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.iter().map(|(_, n)| n).sum()
    }

    /// Total operations lost to availability windows across all classes.
    pub fn unavailable_total(&self) -> u64 {
        self.unavailable.iter().map(|(_, n)| n).sum()
    }
}

/// The result of one time-domain scenario across every overlay.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Scenario identifier (`"latency_under_churn"`).
    pub id: String,
    /// Human-readable description of the setup.
    pub title: String,
    /// One row per overlay.
    pub series: Vec<ScenarioSeries>,
}

impl ScenarioResult {
    /// Renders the per-class latency rows as CSV (one row per overlay and
    /// operation class; overlay-level totals live in the JSON rendering).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,overlay,class,count,mean_ms,p50_ms,p95_ms,p99_ms,availability\n",
        );
        for series in &self.series {
            let availability = series
                .availability
                .map(|a| format!("{a:.4}"))
                .unwrap_or_default();
            for class in &series.classes {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.3},{:.3},{:.3},{:.3},{}",
                    self.id,
                    series.overlay,
                    class.class,
                    class.count,
                    class.mean_ms,
                    class.p50_ms,
                    class.p95_ms,
                    class.p99_ms,
                    availability
                );
            }
        }
        out
    }

    /// Renders the scenario as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Scenario {} — {}", self.id, self.title);
        for series in &self.series {
            let skipped = if series.skipped.is_empty() {
                "0 skipped".to_owned()
            } else {
                let detail: Vec<String> = series
                    .skipped
                    .iter()
                    .map(|(class, n)| format!("{class}: {n}"))
                    .collect();
                format!("{} skipped ({})", series.skipped_total(), detail.join(", "))
            };
            let faults = if series.fault_kills > 0 {
                format!(", {} killed by faults", series.fault_kills)
            } else {
                String::new()
            };
            let availability = match series.availability {
                Some(a) => format!(
                    ", availability {:.2}% over {} fault-window ops ({} unavailable, \
                     {} repairs, mean {:.0}ms)",
                    a * 100.0,
                    series.window_attempts,
                    series.unavailable_total(),
                    series.repairs,
                    series.repair_mean_ms
                ),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}: {:.2} ops per virtual second over {:.1}s, {} messages, {}{}{}",
                series.overlay,
                series.throughput,
                series.virtual_seconds,
                series.messages,
                skipped,
                faults,
                availability
            );
            let _ = writeln!(
                out,
                "    {:>8} | {:>7} | {:>10} | {:>10} | {:>10} | {:>10}",
                "class", "count", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
            );
            for class in &series.classes {
                let _ = writeln!(
                    out,
                    "    {:>8} | {:>7} | {:>10.2} | {:>10.2} | {:>10.2} | {:>10.2}",
                    class.class,
                    class.count,
                    class.mean_ms,
                    class.p50_ms,
                    class.p95_ms,
                    class.p99_ms
                );
            }
        }
        out
    }
}

/// One registered scenario: an identifier plus the function that turns a
/// [`Profile`] into the declarative [`ScenarioPlan`] the generic engine
/// runs.
pub struct ScenarioSpec {
    /// Stable scenario identifier (`"latency_under_churn"`, …).
    pub id: &'static str,
    /// Builds the plan for a profile.
    pub build: fn(&Profile) -> ScenarioPlan,
}

/// Every registered scenario, in catalog order.  Adding a scenario here —
/// and nowhere else — puts it in `reproduce --scenario`, `--list`, the JSON
/// and CSV reports and the determinism test, for every registered overlay.
pub fn all_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            id: "latency_under_churn",
            build: specs::latency_under_churn_plan,
        },
        ScenarioSpec {
            id: "flash_crowd",
            build: specs::flash_crowd_plan,
        },
        ScenarioSpec {
            id: "regional_failure",
            build: specs::regional_failure_plan,
        },
        ScenarioSpec {
            id: "degraded_links",
            build: specs::degraded_links_plan,
        },
        ScenarioSpec {
            id: "skew_ramp",
            build: specs::skew_ramp_plan,
        },
        ScenarioSpec {
            id: "cascading_failure",
            build: specs::cascading_failure_plan,
        },
    ]
}

/// Identifiers of every scenario, in catalog order.
pub fn all_scenario_ids() -> Vec<&'static str> {
    all_scenarios().into_iter().map(|s| s.id).collect()
}

/// Runs a scenario by identifier (case-insensitive); `None` for an unknown
/// one.
pub fn run_scenario(id: &str, profile: &Profile) -> Option<ScenarioResult> {
    run_scenario_with_build(id, profile, None)
}

/// [`run_scenario`] with the plan's [`BuildKind`] overridden (`None` keeps
/// the plan's own setting — [`BuildKind::Join`] for every registered
/// scenario, which is what pins the committed fixtures).
pub fn run_scenario_with_build(
    id: &str,
    profile: &Profile,
    build: Option<BuildKind>,
) -> Option<ScenarioResult> {
    run_scenario_with_options(id, profile, build, None)
}

/// [`run_scenario`] with the plan's [`BuildKind`] and replication degree
/// overridden (`None` keeps the plan's own settings — `Join` and k = 1 for
/// every registered scenario, which is what pins the committed fixtures).
pub fn run_scenario_with_options(
    id: &str,
    profile: &Profile,
    build: Option<BuildKind>,
    replicas: Option<usize>,
) -> Option<ScenarioResult> {
    run_scenario_full(id, profile, build, replicas, None).map(|(result, _)| result)
}

/// [`run_scenario`] with the route recorder attached: the first repetition
/// of every overlay records its per-operation span trees under `trace`, and
/// the captured buffers come back alongside the result as `(overlay name,
/// buffer)` pairs.  The result itself is byte-identical to [`run_scenario`]
/// — the recorder observes the message stream without perturbing it.
pub fn run_scenario_traced(
    id: &str,
    profile: &Profile,
    trace: TraceConfig,
) -> Option<(ScenarioResult, Vec<(String, TraceBuffer)>)> {
    run_scenario_full(id, profile, None, None, Some(trace))
}

/// The fully-general scenario entry point: [`BuildKind`] and replication
/// overrides plus the optional route recorder, all in one call (the
/// `reproduce` binary's combination).  Every other `run_scenario_*` variant
/// delegates here.
pub fn run_scenario_full(
    id: &str,
    profile: &Profile,
    build: Option<BuildKind>,
    replicas: Option<usize>,
    trace: Option<TraceConfig>,
) -> Option<(ScenarioResult, Vec<(String, TraceBuffer)>)> {
    let spec = all_scenarios()
        .into_iter()
        .find(|s| s.id.eq_ignore_ascii_case(id))?;
    let mut plan = (spec.build)(profile);
    if let Some(build) = build {
        plan.build = build;
    }
    if let Some(replicas) = replicas {
        plan.replicas = replicas;
    }
    let (series, traces) = run_plan_traced(profile, &plan, trace);
    Some((
        ScenarioResult {
            id: spec.id.to_owned(),
            title: plan.title.clone(),
            series,
        },
        traces,
    ))
}

/// The generic scenario engine: drives every overlay of
/// [`standard_overlays`] through `plan`, aggregating the profile's
/// repetitions into one [`ScenarioSeries`] per overlay.
///
/// Per repetition: build the overlay at the plan's size, bulk-load it,
/// instantiate the latency plan with the repetition seed, draw the phased
/// arrival schedule and execute it with the fault plan interleaved.  All
/// seeding matches the pre-registry engine byte for byte, which is what pins
/// the legacy scenarios to their fixtures.
pub fn run_plan(profile: &Profile, plan: &ScenarioPlan) -> Vec<ScenarioSeries> {
    run_plan_traced(profile, plan, None).0
}

/// [`run_plan`] with an optional route recorder: with a
/// [`TraceConfig`], the *first* repetition of every overlay runs with the
/// recorder attached (sampling and capacity per the config) and the
/// captured buffers come back alongside the series, one `(overlay name,
/// buffer)` pair per overlay that produced one.  Tracing reads the message
/// stream without touching it, so the series are byte-identical to an
/// untraced run.
pub fn run_plan_traced(
    profile: &Profile,
    plan: &ScenarioPlan,
    trace: Option<TraceConfig>,
) -> (Vec<ScenarioSeries>, Vec<(String, TraceBuffer)>) {
    let n = plan.n;
    let specs = standard_overlays();
    let reps = profile.repetitions;
    // Every (overlay, repetition) unit is self-contained: the overlay is
    // built, bulk-loaded and driven entirely inside the unit from seeds
    // derived only from the unit's indices, so the units fan out across the
    // configured worker threads.  Aggregation below walks the outcomes in
    // canonical (overlay, repetition) order — the output depends on that
    // order alone, never on execution order, which keeps results
    // byte-identical at any thread count.
    let outcomes = baton_net::run_indexed(specs.len() * reps, |unit| {
        let spec = &specs[unit / reps];
        let rep = unit % reps;
        let seed = profile.rep_seed(rep);
        let mut overlay = {
            let _t = baton_net::profiler::scope("scenario.build");
            match plan.build {
                BuildKind::Join => spec.build(profile, n, seed),
                BuildKind::Bulk => spec.build_bulk(profile, n, seed),
            }
        };
        {
            let _t = baton_net::profiler::scope("scenario.load");
            match plan.build {
                BuildKind::Join => load_overlay(profile, &mut *overlay, plan.load, seed),
                BuildKind::Bulk => load_overlay_direct(profile, &mut *overlay, plan.load, seed),
            };
        }
        // k = 1 skips the call entirely: replication is strictly additive
        // and the legacy fixtures pin the k = 1 byte stream.
        let k = spec.replication.clamp(plan.replicas);
        if k > 1 {
            overlay
                .set_replication(k)
                .expect("clamped replication degree is supported");
        }
        overlay.set_latency_model(plan.latency.build(seed ^ 0x1A7E));
        // Observability rides on the first repetition only: repetitions
        // diverge by seed, so one trajectory (not an average of
        // incomparable ones) is the honest time series, and one trace
        // buffer per overlay bounds the recorder's footprint.
        if rep == 0 {
            if let Some(config) = trace {
                overlay.set_trace(config);
            }
        }
        let metrics = (rep == 0).then_some(plan.metrics.as_ref()).flatten();
        let mut rng = SimRng::seeded(seed ^ 0x0BE7);
        let events = {
            let _t = baton_net::profiler::scope("scenario.schedule");
            plan.workload.schedule(&mut rng.derive(1))
        };
        let outcome = {
            let _t = baton_net::profiler::scope("scenario.run_phased");
            run_phased_with_metrics(
                &mut *overlay,
                &events,
                &plan.workload,
                &plan.faults,
                &mut rng,
                n / 2,
                metrics,
            )
            .expect("open-loop run cannot fail")
        };
        (outcome, overlay.take_trace())
    });
    let mut outcomes = outcomes;
    let mut series = Vec::new();
    let mut traces = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let mut latencies: std::collections::BTreeMap<&'static str, Vec<baton_net::SimTime>> =
            Default::default();
        let mut skipped: std::collections::BTreeMap<&'static str, u64> = Default::default();
        let mut unavailable: std::collections::BTreeMap<&'static str, u64> = Default::default();
        let mut messages = 0u64;
        let mut fault_kills = 0u64;
        let mut window_attempts = 0u64;
        let mut window_unavailable = 0u64;
        let mut repair_samples: Vec<baton_net::SimTime> = Vec::new();
        let mut repair_wall = std::time::Duration::ZERO;
        let mut throughput_sum = 0.0f64;
        let mut seconds_sum = 0.0f64;
        for (outcome, _) in &outcomes[idx * reps..(idx + 1) * reps] {
            for (class, count) in &outcome.skipped {
                *skipped.entry(class).or_insert(0) += count;
            }
            for (class, count) in &outcome.unavailable {
                *unavailable.entry(class).or_insert(0) += count;
            }
            window_attempts += outcome.window_attempts.values().sum::<u64>();
            window_unavailable += outcome.window_unavailable.values().sum::<u64>();
            repair_samples.extend(&outcome.repair_times);
            repair_wall += outcome.repair_wall;
            messages += outcome.messages;
            fault_kills += outcome.fault_kills;
            throughput_sum += outcome.throughput();
            seconds_sum += outcome.makespan.as_secs_f64();
            for (class, samples) in &outcome.latencies {
                latencies.entry(class).or_default().extend(samples);
            }
        }
        // The numerator is the in-window failure count: a straggling
        // repair can fail an operation after its assessment window
        // closed, and that failure belongs to `unavailable` but not to
        // the availability fraction (see `OpenLoopOutcome::availability`).
        let availability = (window_attempts > 0).then(|| {
            (window_attempts - window_unavailable.min(window_attempts)) as f64
                / window_attempts as f64
        });
        let repair_summary = LatencySummary::from_samples(&repair_samples);
        let divisor = reps.max(1) as f64;
        let classes = OpClass::ALL
            .iter()
            .filter_map(|class| {
                let samples = latencies.get(class.name())?;
                let summary = LatencySummary::from_samples(samples)?;
                Some(ClassLatency {
                    class: class.name().to_owned(),
                    count: summary.count as u64,
                    mean_ms: summary.mean.as_millis_f64(),
                    p50_ms: summary.p50.as_millis_f64(),
                    p95_ms: summary.p95.as_millis_f64(),
                    p99_ms: summary.p99.as_millis_f64(),
                })
            })
            .collect();
        series.push(ScenarioSeries {
            overlay: spec.series.to_owned(),
            classes,
            throughput: throughput_sum / divisor,
            virtual_seconds: seconds_sum / divisor,
            messages,
            skipped: OpClass::ALL
                .iter()
                .filter_map(|class| {
                    let count = *skipped.get(class.name())?;
                    (count > 0).then(|| (class.name().to_owned(), count))
                })
                .collect(),
            fault_kills,
            unavailable: OpClass::ALL
                .iter()
                .filter_map(|class| {
                    let count = *unavailable.get(class.name())?;
                    (count > 0).then(|| (class.name().to_owned(), count))
                })
                .collect(),
            window_attempts,
            availability,
            repairs: repair_samples.len() as u64,
            repair_mean_ms: repair_summary.map_or(0.0, |s| s.mean.as_millis_f64()),
            repair_p95_ms: repair_summary.map_or(0.0, |s| s.p95.as_millis_f64()),
            repair_wall,
            timeseries: std::mem::take(&mut outcomes[idx * reps].0.samples),
        });
        if let Some(buffer) = outcomes[idx * reps].1.take() {
            traces.push((spec.series.to_owned(), buffer));
        }
    }
    (series, traces)
}

/// The `latency_under_churn` scenario: search/insert/range traffic measured
/// while 10% of the peers join or leave (and a few abruptly fail) per
/// virtual minute, over seeded log-normal links with a 40ms median.
pub fn latency_under_churn(profile: &Profile) -> ScenarioResult {
    run_scenario("latency_under_churn", profile).expect("registered scenario")
}

/// The `flash_crowd` scenario: a steady open-loop mix whose search, range
/// and insert keys collapse onto a hot 1% slice of the domain for the
/// middle 20 virtual seconds of the run.
pub fn flash_crowd(profile: &Profile) -> ScenarioResult {
    run_scenario("flash_crowd", profile).expect("registered scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_under_churn_reports_every_overlay_with_ordered_percentiles() {
        let profile = Profile::smoke();
        let result = latency_under_churn(&profile);
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(
                series.throughput.is_finite() && series.throughput > 0.0,
                "{} throughput {}",
                series.overlay,
                series.throughput
            );
            assert!(series.virtual_seconds > 0.0);
            assert!(
                !series.classes.is_empty(),
                "{} has no classes",
                series.overlay
            );
            for class in &series.classes {
                assert!(class.count > 0);
                for v in [class.mean_ms, class.p50_ms, class.p95_ms, class.p99_ms] {
                    assert!(v.is_finite() && v >= 0.0, "{v} not finite");
                }
                assert!(
                    class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                    "{}::{} percentiles out of order",
                    series.overlay,
                    class.class
                );
            }
        }
        // Searches route over >= 1 hop of ~40ms links: medians must be in a
        // sane band, not zero and not absurd.
        let baton = &result.series[0];
        let search = baton.classes.iter().find(|c| c.class == "search").unwrap();
        assert!(
            search.p50_ms > 1.0,
            "search p50 {} too small",
            search.p50_ms
        );
        let table = result.to_table();
        assert!(table.contains("latency_under_churn"));
        assert!(table.contains("BATON"));
        assert!(table.contains("D3-Tree"));
    }

    #[test]
    fn skips_are_attributed_to_classes() {
        let profile = Profile::smoke();
        let result = latency_under_churn(&profile);
        // Chord cannot answer range queries: every one of its skips must be
        // attributed, and the range class must be among them.
        let chord = result
            .series
            .iter()
            .find(|s| s.overlay == "Chord")
            .expect("Chord series");
        let ranged: u64 = chord
            .skipped
            .iter()
            .filter(|(class, _)| class == "range")
            .map(|(_, n)| *n)
            .sum();
        assert!(ranged > 0, "Chord skipped no ranges: {:?}", chord.skipped);
        assert_eq!(
            chord.skipped_total(),
            chord.skipped.iter().map(|(_, n)| n).sum::<u64>()
        );
        // Fully capable overlays never skip ranges.
        let baton = &result.series[0];
        assert!(baton.skipped.iter().all(|(class, _)| class != "range"));
    }

    #[test]
    fn flash_crowd_reports_every_overlay() {
        let profile = Profile::smoke();
        let result = flash_crowd(&profile);
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(series.throughput > 0.0, "{} idle", series.overlay);
            let search = series
                .classes
                .iter()
                .find(|c| c.class == "search")
                .unwrap_or_else(|| panic!("{} ran no searches", series.overlay));
            assert!(search.count > 0);
            assert!(search.p50_ms > 1.0);
        }
        let table = result.to_table();
        assert!(table.contains("flash_crowd"));
        assert!(table.contains("hottest 1%"));
    }

    #[test]
    fn bulk_built_scenarios_run_every_overlay() {
        // The Bulk knob swaps only the construction path: the workload still
        // runs and reports for every overlay, including the two without a
        // bulk constructor (they fall back to the join build).
        let profile = Profile::smoke();
        let result =
            run_scenario_with_build("latency_under_churn", &profile, Some(BuildKind::Bulk))
                .expect("registered scenario");
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(
                series.throughput > 0.0,
                "{} idle under the bulk build",
                series.overlay
            );
            let search = series
                .classes
                .iter()
                .find(|c| c.class == "search")
                .unwrap_or_else(|| panic!("{} ran no searches", series.overlay));
            assert!(search.count > 0);
        }
    }

    #[test]
    fn scenario_registry_resolves_ids() {
        assert_eq!(
            all_scenario_ids(),
            vec![
                "latency_under_churn",
                "flash_crowd",
                "regional_failure",
                "degraded_links",
                "skew_ramp",
                "cascading_failure"
            ]
        );
        let profile = Profile::smoke();
        assert!(run_scenario("nonsense", &profile).is_none());
        assert!(run_scenario("LATENCY_UNDER_CHURN", &profile).is_some());
        assert!(run_scenario("Flash_Crowd", &profile).is_some());
    }

    #[test]
    fn regional_failure_kills_a_correlated_slice_and_recovers() {
        let profile = Profile::smoke();
        let result = run_scenario("regional_failure", &profile).expect("registered");
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            // The fault plan fires on every overlay — targeted kills on the
            // systems that expose their peer list (all four do).
            assert!(
                series.fault_kills > 0,
                "{} saw no fault kills",
                series.overlay
            );
            // Deferred kills (overlays with a repair protocol) are mended
            // one repair per kill; on the rest the kills run the immediate
            // fail-and-recover protocol under the `fail` class.
            let fails: u64 = series
                .classes
                .iter()
                .filter(|c| c.class == "fail")
                .map(|c| c.count)
                .sum();
            if series.repairs > 0 {
                assert_eq!(
                    series.repairs, series.fault_kills,
                    "{}: every deferred kill must be repaired",
                    series.overlay
                );
                assert!(series.repair_mean_ms > 0.0);
                assert!(series.repair_p95_ms >= series.repair_mean_ms * 0.5);
            } else {
                assert!(
                    fails >= series.fault_kills,
                    "{}: fail class ({fails}) must cover the {} fault kills",
                    series.overlay,
                    series.fault_kills
                );
            }
            assert!(series.throughput > 0.0);
        }
        // BATON defers its kills: its series measures the availability
        // window the other overlays close instantly.
        let baton = &result.series[0];
        assert_eq!(baton.overlay, "BATON");
        assert!(baton.repairs > 0, "BATON must take the deferred path");
        assert!(
            baton.window_attempts > 0,
            "operations must arrive inside the fault window"
        );
        assert!(baton.availability.is_some());
        let table = result.to_table();
        assert!(table.contains("killed by faults"));
        assert!(table.contains("availability"));
    }

    #[test]
    fn cascading_failure_measures_availability_under_two_waves() {
        let profile = Profile::smoke();
        let result = run_scenario("cascading_failure", &profile).expect("registered");
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(
                series.fault_kills > 0,
                "{} saw no fault kills",
                series.overlay
            );
            assert!(series.throughput > 0.0);
        }
        let baton = &result.series[0];
        assert_eq!(baton.overlay, "BATON");
        assert_eq!(baton.repairs, baton.fault_kills);
        let availability = baton.availability.expect("window operations arrived");
        assert!((0.0..=1.0).contains(&availability));
        // Both ~10s slow-repair windows see traffic; whether any of it lands
        // on a dead slice is seed luck at smoke scale, so only the
        // measurement plumbing is pinned here (the k-contrast lives in
        // `replication_raises_availability_under_regional_failure`).
        assert!(baton.window_attempts > 0);
        // The JSON rendering carries the availability keys for this
        // scenario and omits them for the faultless legacy ones.
        let json = crate::report::render_scenarios_json(&[result]);
        assert!(json.contains("\"availability\""));
        assert!(json.contains("\"repairs\""));
        assert!(json.contains("\"unavailable\""));
        let legacy = run_scenario("flash_crowd", &profile).expect("registered");
        let legacy_json = crate::report::render_scenarios_json(&[legacy]);
        assert!(!legacy_json.contains("\"availability\""));
        assert!(!legacy_json.contains("\"repairs\""));
    }

    #[test]
    fn replication_raises_availability_under_regional_failure() {
        let profile = Profile::smoke();
        let k1 = run_scenario_with_options("regional_failure", &profile, None, Some(1))
            .expect("registered");
        let k2 = run_scenario_with_options("regional_failure", &profile, None, Some(2))
            .expect("registered");
        let a1 = k1.series[0].availability.expect("k=1 window ops");
        // The assessment window is fixed at `[fault.at, fault.at +
        // policy.slow]` regardless of k, so both runs sample the same
        // arrival stream — the denominators match and k=2 always observes.
        let a2 = k2.series[0].availability.expect("k=2 window ops");
        assert_eq!(
            k1.series[0].window_attempts, k2.series[0].window_attempts,
            "fixed windows must give k-independent denominators"
        );
        assert!(a1 <= 0.90, "k=1 availability {a1:.3} suspiciously high");
        assert!(
            a2 > a1,
            "k=2 availability ({a2:.3}) must beat k=1 ({a1:.3})"
        );
        assert!(a2 >= 0.99, "k=2 availability {a2:.3} below 99%");
        // Replica maintenance costs messages: the k=2 run spends more.
        assert!(k2.series[0].messages > k1.series[0].messages);
    }

    #[test]
    fn degraded_links_and_skew_ramp_run_every_overlay() {
        let profile = Profile::smoke();
        for id in ["degraded_links", "skew_ramp"] {
            let result = run_scenario(id, &profile).expect("registered");
            assert_eq!(result.series.len(), 4, "{id}");
            for series in &result.series {
                assert!(series.throughput > 0.0, "{id}: {} idle", series.overlay);
                assert_eq!(series.fault_kills, 0, "{id} plans no faults");
                let search = series
                    .classes
                    .iter()
                    .find(|c| c.class == "search")
                    .unwrap_or_else(|| panic!("{id}: {} ran no searches", series.overlay));
                assert!(search.count > 0);
                assert!(search.p50_ms > 1.0);
            }
        }
    }
}
