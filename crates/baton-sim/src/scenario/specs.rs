//! The registered scenario plans.
//!
//! Each function here turns a [`Profile`] into a [`ScenarioPlan`] — and that
//! is *all* a scenario is.  The generic engine
//! ([`run_plan`](crate::scenario::run_plan)) handles every overlay, every
//! repetition and every output mode, so the plans below contain zero
//! per-overlay and zero per-renderer code.
//!
//! The two legacy plans (`latency_under_churn`, `flash_crowd`) reproduce the
//! pre-registry hand-rolled runners *byte for byte* (pinned by
//! `tests/fixtures/scenario_smoke_seed.json`): their rate arithmetic, seeds
//! and key-draw order are deliberately identical.

use baton_net::{LatencyPlan, LinkDegradation, LinkScope, RegionMap, RepairPolicy, SimTime};
use baton_workload::{
    FaultEvent, FaultKind, FaultPlan, KeyDistribution, KeyMix, KeyWindow, MetricsConfig, OpRates,
    Phase, PhasedWorkload, DOMAIN_HIGH, DOMAIN_LOW,
};

use crate::profile::Profile;

/// How the scenario's overlays are constructed before the workload runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BuildKind {
    /// Join-by-join construction — the default, and what every committed
    /// fixture was generated with.
    #[default]
    Join,
    /// The bulk fast path for overlays that register one
    /// ([`OverlaySpec::supports_bulk`](crate::driver::OverlaySpec::supports_bulk));
    /// the rest silently fall back to the join build.
    Bulk,
}

/// A declarative scenario: everything the generic engine needs to run it.
#[derive(Clone, Debug)]
pub struct ScenarioPlan {
    /// Human-readable description of the setup (the report heading).
    pub title: String,
    /// Network size (every overlay is built with this many nodes).
    pub n: usize,
    /// How the overlays are constructed ([`BuildKind::Join`] by default).
    pub build: BuildKind,
    /// Distribution of the bulk-loaded dataset.
    pub load: KeyDistribution,
    /// The link-latency topology, instantiated per repetition seed.
    pub latency: LatencyPlan,
    /// The phased open-loop workload.
    pub workload: PhasedWorkload,
    /// Timed fault events injected into the run.
    pub faults: FaultPlan,
    /// Replication degree k applied to every overlay after construction
    /// (clamped to each overlay's supported maximum).  1 — the default and
    /// every legacy plan — leaves the overlays byte-identical to the
    /// pre-replication engine.
    pub replicas: usize,
    /// Virtual-time metrics sampling for the first repetition of every
    /// overlay (`None` — every legacy plan — disables it and keeps the
    /// fixtures byte-identical).  The fault scenarios sample once per
    /// virtual second, turning their reports into dip-and-recover time
    /// series.
    pub metrics: Option<MetricsConfig>,
}

/// The scenario's network size: the profile's largest configured network.
fn scenario_n(profile: &Profile) -> usize {
    *profile
        .network_sizes
        .last()
        .expect("profile has network sizes")
}

/// `latency_under_churn` — the original template: an open-loop mix of
/// searches, range queries, inserts, joins, leaves and failures over
/// log-normal links, with 10% of the peers churning per virtual minute.
pub fn latency_under_churn_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let duration = SimTime::from_secs(60);
    let search_rate = (profile.query_count() as f64 / duration.as_secs_f64()).max(0.2);
    // 10% of the peers churn per virtual minute, split between joins and
    // leaves; a quarter of the departures are abrupt failures (graceful on
    // overlays without a failure protocol).
    let churn_rate = (n as f64 * 0.10) / 2.0 / 60.0;
    let fail_rate = churn_rate / 4.0;
    ScenarioPlan {
        title: format!(
            "operation latency and throughput, N = {n}, 10% churn per virtual minute, \
             log-normal links (median 40ms, σ = 0.5)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency: LatencyPlan::LogNormal {
            median: SimTime::from_millis(40),
            sigma: 0.5,
        },
        workload: PhasedWorkload::single(
            duration,
            OpRates {
                search: search_rate,
                range: search_rate / 4.0,
                insert: search_rate / 2.0,
                join: churn_rate,
                leave: churn_rate - fail_rate,
                fail: fail_rate,
            },
            KeyMix::Uniform,
        ),
        faults: FaultPlan::none(),
        replicas: 1,
        metrics: None,
    }
}

/// `flash_crowd` — a steady open-loop mix whose search, range and insert
/// keys collapse onto a hot 1% slice of the domain for the middle 20
/// virtual seconds of the run: the whole crowd hammers the few peers owning
/// the hot slice.
pub fn flash_crowd_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let duration = SimTime::from_secs(60);
    // A denser query stream than the churn scenario: the crowd is the load.
    let search_rate = (profile.query_count() as f64 / duration.as_secs_f64() * 5.0).max(2.0);
    let hot_width = (DOMAIN_HIGH - DOMAIN_LOW) / 100;
    let mut workload = PhasedWorkload::single(
        duration,
        OpRates {
            search: search_rate,
            range: search_rate / 8.0,
            insert: search_rate / 4.0,
            ..OpRates::zero()
        },
        KeyMix::Uniform,
    );
    workload.windows.push(KeyWindow {
        from: SimTime::from_secs(20),
        until: SimTime::from_secs(40),
        keys: KeyMix::HotSlice {
            low: DOMAIN_LOW,
            high: DOMAIN_LOW + hot_width,
        },
    });
    ScenarioPlan {
        title: format!(
            "flash crowd, N = {n}: keys collapse onto the hottest 1% of the domain \
             during t = [20s, 40s), log-normal links (median 40ms, σ = 0.5)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency: LatencyPlan::LogNormal {
            median: SimTime::from_millis(40),
            sigma: 0.5,
        },
        workload,
        faults: FaultPlan::none(),
        replicas: 1,
        metrics: None,
    }
}

/// The regional latency topology shared by the fault and degradation
/// scenarios: four regions, tight 10ms intra-region links, 60ms
/// inter-region links (both log-normal).
fn four_regions(profile: &Profile, salt: u64) -> (RegionMap, LatencyPlan) {
    let map = RegionMap::new(4, profile.seed ^ salt);
    let latency = LatencyPlan::Regional {
        map,
        intra: Box::new(LatencyPlan::LogNormal {
            median: SimTime::from_millis(10),
            sigma: 0.3,
        }),
        inter: Box::new(LatencyPlan::LogNormal {
            median: SimTime::from_millis(60),
            sigma: 0.5,
        }),
        degradations: Vec::new(),
    };
    (map, latency)
}

/// `regional_failure` — a correlated failure: at t = 20s half of region 1
/// fails *at once* (every victim shares the region, as when a data centre
/// goes dark), and a 20-second recovery window of elevated joins refills
/// the overlay before a steady closing phase.
pub fn regional_failure_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let (map, latency) = four_regions(profile, 0x9E61);
    let phase_len = SimTime::from_secs(20);
    let search_rate = (profile.query_count() as f64 / 60.0).max(0.5);
    let steady = OpRates {
        search: search_rate,
        range: search_rate / 4.0,
        insert: search_rate / 2.0,
        ..OpRates::zero()
    };
    // Region 1 holds ~n/4 peers; killing half loses ~n/8. The recovery
    // phase replaces them over its 20 seconds.
    let recovery_join = (n as f64 / 8.0) / 20.0;
    ScenarioPlan {
        title: format!(
            "correlated regional failure, N = {n}: 50% of region 1 (of 4) fails at \
             t = 20s, joins refill during t = [20s, 40s); log-normal links \
             (intra 10ms, inter 60ms)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency,
        workload: PhasedWorkload {
            phases: vec![
                Phase {
                    duration: phase_len,
                    rates: steady,
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: phase_len,
                    rates: OpRates {
                        join: recovery_join,
                        ..steady
                    },
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: phase_len,
                    rates: steady,
                    keys: KeyMix::Uniform,
                },
            ],
            windows: Vec::new(),
            range_selectivity: 0.001,
        },
        faults: FaultPlan::new(vec![FaultEvent {
            at: SimTime::from_secs(20),
            kind: FaultKind::KillRegion {
                map,
                region: 1,
                fraction: 0.5,
            },
        }])
        .with_repair(repair_policy()),
        replicas: 1,
        metrics: Some(MetricsConfig::default()),
    }
}

/// The repair timing shared by the deferred-failure scenarios: a surviving
/// replica streams the slice back in ~250ms; with no replica the slice
/// waits out a ~10s timeout-detected rebuild.
fn repair_policy() -> RepairPolicy {
    RepairPolicy {
        fast: SimTime::from_millis(250),
        slow: SimTime::from_secs(10),
    }
}

/// `cascading_failure` — two correlated waves: half of region 1 fails at
/// t = 15s and, before its repairs can finish, half of region 2 follows at
/// t = 30s.  Elevated joins refill the overlay after each wave.  Victims
/// stay dead until their timed repair runs, so the scenario measures
/// availability under compounding damage — the regime where replication
/// degree decides whether exact-match reads keep answering.
pub fn cascading_failure_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let (map, latency) = four_regions(profile, 0xCA5C);
    let phase_len = SimTime::from_secs(15);
    let search_rate = (profile.query_count() as f64 / 60.0).max(0.5);
    let steady = OpRates {
        search: search_rate,
        range: search_rate / 4.0,
        insert: search_rate / 2.0,
        ..OpRates::zero()
    };
    // Each wave kills ~n/8 peers; the following phase replaces them.
    let recovery_join = (n as f64 / 8.0) / 15.0;
    ScenarioPlan {
        title: format!(
            "cascading regional failures, N = {n}: 50% of region 1 fails at t = 15s \
             and 50% of region 2 at t = 30s, joins refill after each wave; \
             timed repair (fast 250ms / slow 10s), log-normal links \
             (intra 10ms, inter 60ms)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency,
        workload: PhasedWorkload {
            phases: vec![
                Phase {
                    duration: phase_len,
                    rates: steady,
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: phase_len,
                    rates: OpRates {
                        join: recovery_join,
                        ..steady
                    },
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: phase_len,
                    rates: OpRates {
                        join: recovery_join,
                        ..steady
                    },
                    keys: KeyMix::Uniform,
                },
                Phase {
                    duration: phase_len,
                    rates: steady,
                    keys: KeyMix::Uniform,
                },
            ],
            windows: Vec::new(),
            range_selectivity: 0.001,
        },
        faults: FaultPlan::new(vec![
            FaultEvent {
                at: SimTime::from_secs(15),
                kind: FaultKind::KillRegion {
                    map,
                    region: 1,
                    fraction: 0.5,
                },
            },
            FaultEvent {
                at: SimTime::from_secs(30),
                kind: FaultKind::KillRegion {
                    map,
                    region: 2,
                    fraction: 0.5,
                },
            },
        ])
        .with_repair(repair_policy()),
        replicas: 1,
        metrics: Some(MetricsConfig::default()),
    }
}

/// `degraded_links` — the topology stays intact but the *network* does not:
/// from t = 20s the inter-region links ramp up to 5× their base latency
/// over five seconds, stay degraded until t = 45s, then recover.  Intra-
/// region traffic is unaffected; the report shows how much of each
/// overlay's routing crosses regions.
pub fn degraded_links_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let (_, mut latency) = four_regions(profile, 0xD154);
    if let LatencyPlan::Regional { degradations, .. } = &mut latency {
        degradations.push(LinkDegradation {
            from: SimTime::from_secs(20),
            until: SimTime::from_secs(45),
            ramp: SimTime::from_secs(5),
            factor: 5.0,
            scope: LinkScope::InterRegion,
        });
    }
    let search_rate = (profile.query_count() as f64 / 60.0).max(0.5);
    ScenarioPlan {
        title: format!(
            "degraded links, N = {n}: inter-region latency ramps to 5× during \
             t = [20s, 45s) (5s ramp); 4 regions, log-normal links \
             (intra 10ms, inter 60ms)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency,
        workload: PhasedWorkload::single(
            SimTime::from_secs(60),
            OpRates {
                search: search_rate,
                range: search_rate / 4.0,
                insert: search_rate / 2.0,
                ..OpRates::zero()
            },
            KeyMix::Uniform,
        ),
        faults: FaultPlan::none(),
        replicas: 1,
        metrics: None,
    }
}

/// `skew_ramp` — a read/write mix whose key skew tightens over time: the
/// first 20 seconds draw from Zipf(0.5), the next from Zipf(0.9), the last
/// from Zipf(1.3).  Ever more of the traffic lands on ever fewer peers,
/// which is exactly the regime the load-balancing baselines were built for.
pub fn skew_ramp_plan(profile: &Profile) -> ScenarioPlan {
    let n = scenario_n(profile);
    let phase_len = SimTime::from_secs(20);
    let search_rate = (profile.query_count() as f64 / 60.0).max(0.5);
    let rates = OpRates {
        search: search_rate,
        range: search_rate / 4.0,
        insert: search_rate / 2.0,
        ..OpRates::zero()
    };
    let phase = |theta: f64| Phase {
        duration: phase_len,
        rates,
        keys: KeyMix::Zipf { theta },
    };
    ScenarioPlan {
        title: format!(
            "skew ramp, N = {n}: read/write keys tighten from Zipf(θ = 0.5) through \
             Zipf(θ = 0.9) to Zipf(θ = 1.3) in 20s phases, log-normal links \
             (median 40ms, σ = 0.5)"
        ),
        n,
        build: BuildKind::default(),
        load: KeyDistribution::Uniform,
        latency: LatencyPlan::LogNormal {
            median: SimTime::from_millis(40),
            sigma: 0.5,
        },
        workload: PhasedWorkload {
            phases: vec![phase(0.5), phase(0.9), phase(1.3)],
            windows: Vec::new(),
            range_selectivity: 0.001,
        },
        faults: FaultPlan::none(),
        replicas: 1,
        metrics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_plans_keep_the_pre_registry_shape() {
        let profile = Profile::smoke();
        let churn = latency_under_churn_plan(&profile);
        assert_eq!(churn.n, 80);
        assert_eq!(churn.workload.phases.len(), 1);
        assert!(churn.workload.windows.is_empty());
        assert!(churn.faults.is_empty());
        let rates = churn.workload.phases[0].rates;
        // 10% of 80 peers per minute, split between joins and departures,
        // a quarter of which are abrupt.
        let churn_rate = 80.0 * 0.10 / 2.0 / 60.0;
        assert!((rates.join - churn_rate).abs() < 1e-12);
        assert!((rates.fail - churn_rate / 4.0).abs() < 1e-12);
        assert!((rates.leave - (churn_rate - churn_rate / 4.0)).abs() < 1e-12);

        let crowd = flash_crowd_plan(&profile);
        assert_eq!(crowd.workload.phases.len(), 1);
        assert_eq!(crowd.workload.windows.len(), 1);
        let window = crowd.workload.windows[0];
        assert_eq!(window.from, SimTime::from_secs(20));
        assert_eq!(window.until, SimTime::from_secs(40));
        assert!(matches!(window.keys, KeyMix::HotSlice { .. }));
    }

    #[test]
    fn new_plans_declare_their_stress() {
        let profile = Profile::smoke();
        let regional = regional_failure_plan(&profile);
        assert_eq!(regional.workload.phases.len(), 3);
        assert_eq!(regional.faults.events().len(), 1);
        assert!(matches!(
            regional.faults.events()[0].kind,
            FaultKind::KillRegion { region: 1, .. }
        ));
        assert!(regional.latency.region_map().is_some());
        // Deferred kills: victims wait out the repair policy's delay.
        let policy = regional.faults.repair().expect("regional defers repairs");
        assert!(policy.fast < policy.slow);

        let cascading = cascading_failure_plan(&profile);
        assert_eq!(cascading.workload.phases.len(), 4);
        assert_eq!(cascading.faults.events().len(), 2);
        assert!(cascading.faults.events()[0].at < cascading.faults.events()[1].at);
        let regions: Vec<u32> = cascading
            .faults
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::KillRegion { region, .. } => region,
                other => panic!("cascading wants regional kills, got {other:?}"),
            })
            .collect();
        assert_eq!(regions, vec![1, 2], "the waves hit different regions");
        assert_eq!(cascading.faults.repair(), Some(&repair_policy()));
        assert_eq!(cascading.replicas, 1, "k stays a CLI / caller knob");

        let degraded = degraded_links_plan(&profile);
        assert!(degraded.faults.is_empty());
        match &degraded.latency {
            LatencyPlan::Regional { degradations, .. } => {
                assert_eq!(degradations.len(), 1);
                assert_eq!(degradations[0].factor, 5.0);
                assert_eq!(degradations[0].scope, LinkScope::InterRegion);
            }
            other => panic!("degraded_links wants a regional plan, got {other:?}"),
        }

        let skew = skew_ramp_plan(&profile);
        assert_eq!(skew.workload.phases.len(), 3);
        let thetas: Vec<f64> = skew
            .workload
            .phases
            .iter()
            .map(|p| match p.keys {
                KeyMix::Zipf { theta } => theta,
                other => panic!("skew phase wants zipf keys, got {other:?}"),
            })
            .collect();
        assert!(
            thetas.windows(2).all(|w| w[0] < w[1]),
            "skew must tighten: {thetas:?}"
        );
    }

    #[test]
    fn region_salts_differ_between_scenarios() {
        // Shared helper, different salts: the two regional scenarios must
        // not accidentally reuse one region assignment.
        let profile = Profile::smoke();
        let a = regional_failure_plan(&profile)
            .latency
            .region_map()
            .unwrap();
        let b = degraded_links_plan(&profile).latency.region_map().unwrap();
        let c = cascading_failure_plan(&profile)
            .latency
            .region_map()
            .unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
