//! `reproduce` — regenerate the BATON paper's evaluation figures and the
//! time-domain scenario reports.
//!
//! ```text
//! reproduce [--figure 8a|8b|...|8i|all|none] [--scenario ID[,ID...]|all|none]
//!           [--profile quick|full|paper|smoke] [--seed N] [--threads N]
//!           [--overlays NAME[,NAME...]] [--replicas N] [--json] [--csv] [--list]
//! ```
//!
//! By default every figure is regenerated at the `quick` profile and printed
//! as text tables, followed by every scenario (latency percentiles and
//! throughput from the discrete-event engine).  `--profile full` uses the
//! paper's network sizes (1000–10,000 nodes) with a scaled-down bulk load;
//! `--profile paper` runs the publication's exact configuration (slow).
//!
//! `--list` prints every registered figure, scenario and overlay id and
//! exits — the machine-checkable catalog, so CI and users never have to grep
//! the source for valid identifiers.
//!
//! `--serve-check` runs the snapshot-vs-routed parity check first (every
//! overlay's exact and range answers from its [`baton_net::RoutingSnapshot`]
//! must equal the routed engine's), reporting to **stderr** only, then
//! continues normally — stdout stays byte-identical with or without the
//! flag, so fixture diffs hold.
//!
//! `--seed N` overrides the profile's base RNG seed for quick variance
//! spot-checks.  The committed fixtures (`tests/fixtures/*.json`) assume the
//! default seed; a run with an overridden seed will not diff clean against
//! them.
//!
//! `--threads N` caps the worker threads the scenario engine fans
//! (overlay × repetition) units across; the default is the machine's
//! available parallelism.  Results are byte-identical at any thread count —
//! aggregation runs in canonical unit order, never in completion order.
//!
//! `--overlays` narrows the comparison list (comma-separated series names,
//! case-insensitive — e.g. `--overlays D3-Tree`) so a single overlay can be
//! run or debugged in isolation; the BATON-only figures 8(f)–(i) are
//! unaffected.
//!
//! `--replicas N` sets the replication degree for scenario runs: every key
//! is held by its routed owner plus `N − 1` deterministic replica peers,
//! clamped per overlay to its advertised maximum (`--list` prints the
//! support matrix).  The default (1) is the legacy owner-only placement and
//! reproduces every committed fixture byte for byte.  Figures ignore the
//! flag.
//!
//! `--build join|bulk` selects how scenario overlays are constructed: `join`
//! (the default) builds node by node exactly as every committed fixture was
//! generated; `bulk` takes the direct deterministic fast path on overlays
//! that offer one (BATON, Chord) and falls back to `join` on the rest.
//! Figures always use the join path.
//!
//! Output modes: the default prints text tables.  `--json` emits the figure
//! array, the scenario array, or — when both are requested — one object
//! `{"figures": [...], "scenarios": [...]}`.  `--csv` prints one CSV block
//! per figure and per scenario.
//!
//! Observability: `--trace PATH` attaches the route recorder to the first
//! repetition of every overlay in every selected scenario and writes the
//! captured span trees to `PATH` — `--trace-format jsonl` (the default; one
//! span per line, validated by `--check-trace`) or `chrome` (the
//! `trace_event` format `chrome://tracing` and Perfetto load).
//! `--trace-sample N` records every Nth operation (default 1 = all); the
//! recorder holds at most 4096 finished spans per overlay (oldest evicted).
//! A hop-anatomy summary table (hops by link kind per overlay) goes to
//! stderr.  Traced runs produce byte-identical reports — the recorder
//! observes without perturbing.  `--check-trace PATH` validates a JSONL
//! dump (schema, closed link-kind enum, frontier-ordered hop times) and
//! exits.

use std::process::ExitCode;

use baton_sim::{
    figures, overlay_names, render_json, render_report, render_scenarios_json, scenario, Profile,
};

struct Options {
    figure: String,
    scenarios: Vec<String>,
    profile: Profile,
    overlays: Vec<String>,
    threads: usize,
    build: Option<scenario::BuildKind>,
    replicas: Option<usize>,
    json: bool,
    csv: bool,
    list: bool,
    serve_check: bool,
    trace: Option<String>,
    trace_format: TraceFormat,
    trace_sample: u64,
    check_trace: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

fn parse_args() -> Result<Options, String> {
    let mut figure = "all".to_owned();
    let mut scenarios = vec!["all".to_owned()];
    let mut profile = Profile::quick();
    let mut seed: Option<u64> = None;
    let mut overlays = Vec::new();
    let mut threads = baton_net::default_threads();
    let mut build = None;
    let mut replicas = None;
    let mut json = false;
    let mut csv = false;
    let mut list = false;
    let mut serve_check = false;
    let mut trace = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut trace_sample = 1u64;
    let mut check_trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                figure = args.next().ok_or("--figure needs a value")?;
            }
            "--scenario" | "-s" => {
                let value = args.next().ok_or("--scenario needs a value")?;
                scenarios = value
                    .split(',')
                    .map(|id| id.trim().to_owned())
                    .filter(|id| !id.is_empty())
                    .collect();
                if scenarios.is_empty() {
                    return Err("--scenario needs at least one identifier".into());
                }
            }
            "--overlays" | "-o" => {
                let list = args.next().ok_or("--overlays needs a value")?;
                overlays.extend(
                    list.split(',')
                        .map(|name| name.trim().to_owned())
                        .filter(|name| !name.is_empty()),
                );
            }
            "--profile" | "-p" => {
                let name = args.next().ok_or("--profile needs a value")?;
                profile = match name.as_str() {
                    "smoke" => Profile::smoke(),
                    "quick" => Profile::quick(),
                    "full" => Profile::full(),
                    "paper" => Profile::paper(),
                    other => return Err(format!("unknown profile '{other}'")),
                };
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("--seed needs an unsigned integer, got '{value}'"))?,
                );
            }
            "--threads" | "-t" => {
                threads = baton_sim::parse_threads(args.next())?;
            }
            "--build" | "-b" => {
                let value = args.next().ok_or("--build needs a value")?;
                build = match value.as_str() {
                    "join" => Some(scenario::BuildKind::Join),
                    "bulk" => Some(scenario::BuildKind::Bulk),
                    other => return Err(format!("--build wants join|bulk, got '{other}'")),
                };
            }
            "--replicas" | "-r" => {
                let value = args.next().ok_or("--replicas needs a value")?;
                let k = value
                    .parse::<usize>()
                    .map_err(|_| format!("--replicas needs an unsigned integer, got '{value}'"))?;
                if k < 1 {
                    return Err("--replicas needs at least 1 (1 = owner-only placement)".into());
                }
                replicas = Some(k);
            }
            "--json" => json = true,
            "--csv" => csv = true,
            "--list" => list = true,
            "--serve-check" => serve_check = true,
            "--trace" => {
                trace = Some(args.next().ok_or("--trace needs an output path")?);
            }
            "--trace-format" => {
                let value = args.next().ok_or("--trace-format needs a value")?;
                trace_format = match value.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(format!("--trace-format wants jsonl|chrome, got '{other}'"))
                    }
                };
            }
            "--trace-sample" => {
                let value = args.next().ok_or("--trace-sample needs a value")?;
                let n = value.parse::<u64>().map_err(|_| {
                    format!("--trace-sample needs an unsigned integer, got '{value}'")
                })?;
                if n == 0 {
                    return Err("--trace-sample needs at least 1 (1 = every operation)".into());
                }
                trace_sample = n;
            }
            "--check-trace" => {
                check_trace = Some(args.next().ok_or("--check-trace needs a path")?);
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: reproduce [--figure 8a..8i|all|none] \
                     [--scenario {}|all|none (comma-separated)] \
                     [--profile smoke|quick|full|paper] [--seed N] \
                     [--threads N (default: available parallelism)] \
                     [--overlays NAME[,NAME...]] [--build join|bulk] \
                     [--replicas N] [--json] [--csv] [--list] [--serve-check] \
                     [--trace PATH] [--trace-format jsonl|chrome] \
                     [--trace-sample N] [--check-trace PATH]",
                    scenario::all_scenario_ids().join("|")
                ))
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    // The override applies to whichever profile was selected, in any
    // argument order.
    if let Some(seed) = seed {
        profile.seed = seed;
    }
    Ok(Options {
        figure,
        scenarios,
        profile,
        overlays,
        threads,
        build,
        replicas,
        json,
        csv,
        list,
        serve_check,
        trace,
        trace_format,
        trace_sample,
        check_trace,
    })
}

/// Resolves the `--scenario` selection into registered identifiers, or an
/// error naming the first unknown one.
fn resolve_scenarios(selection: &[String]) -> Result<Vec<&'static str>, String> {
    let known = scenario::all_scenario_ids();
    if selection.len() == 1 {
        if selection[0].eq_ignore_ascii_case("none") {
            return Ok(Vec::new());
        }
        if selection[0].eq_ignore_ascii_case("all") {
            return Ok(known);
        }
    }
    let mut ids = Vec::new();
    for wanted in selection {
        match known.iter().find(|id| id.eq_ignore_ascii_case(wanted)) {
            Some(id) => {
                if !ids.contains(id) {
                    ids.push(*id);
                }
            }
            None => return Err(format!("unknown scenario '{wanted}'; available: {known:?}")),
        }
    }
    Ok(ids)
}

fn print_catalog() {
    println!("figures:");
    for id in figures::all_figure_ids() {
        println!("  {id}");
    }
    println!("scenarios:");
    for id in scenario::all_scenario_ids() {
        println!("  {id}");
    }
    println!("overlays:");
    for name in overlay_names() {
        println!("  {name}");
    }
    println!("replication (--replicas clamps to each overlay's maximum):");
    for spec in baton_sim::standard_overlays() {
        println!("  {}: k = 1..={}", spec.series, spec.replication.max_k);
    }
    println!("link kinds (--trace tags every hop with one of these):");
    for spec in baton_sim::standard_overlays() {
        let kinds: Vec<&str> = spec.link_kinds.iter().map(|kind| kind.name()).collect();
        println!("  {}: {}", spec.series, kinds.join(", "));
    }
    println!("serve (lock-free snapshot reads; --serve-check verifies parity):");
    for spec in baton_sim::standard_overlays() {
        let mut modes = Vec::new();
        if spec.serve.snapshot {
            modes.push("snapshot");
        }
        if spec.serve.exact {
            modes.push("exact");
        }
        if spec.serve.range {
            modes.push("range");
        }
        println!("  {}: {}", spec.series, modes.join(", "));
    }
    println!("metrics sampling (rep-0 virtual-time series in the JSON report):");
    for spec in scenario::all_scenarios() {
        let plan = (spec.build)(&Profile::smoke());
        let status = if plan.metrics.is_some() {
            "sampled"
        } else {
            "off"
        };
        println!("  {}: {status}", spec.id);
    }
    println!("threads: {} (default)", baton_net::default_threads());
}

/// Validates a JSONL trace dump and reports the result; the `--check-trace`
/// mode runs nothing else.
fn run_check_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("--check-trace: cannot read '{path}': {err}");
            return ExitCode::FAILURE;
        }
    };
    match baton_sim::check_trace_jsonl(&text) {
        Ok(check) => {
            println!(
                "trace ok: {} span(s), {} hop(s), link kinds closed, hop times frontier-ordered",
                check.spans, check.hops
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace invalid: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if options.list {
        print_catalog();
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &options.check_trace {
        return run_check_trace(path);
    }
    baton_net::set_threads(options.threads);
    if let Err(msg) = baton_sim::set_overlay_filter(&options.overlays) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    // The serve check runs before figures and scenarios, and writes only to
    // stderr: stdout stays byte-identical with or without the flag, so CI
    // can diff a `--serve-check` run against the committed fixtures.
    if options.serve_check {
        match baton_sim::run_serve_check(&options.profile) {
            Ok(report) => eprintln!(
                "serve-check ok: {} overlay(s), {} exact, {} range queries byte-agree with the \
                 routed engine",
                report.overlays, report.exact_checked, report.range_checked
            ),
            Err(msg) => {
                eprintln!("serve-check FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Validate the scenario selection before any figure runs: a typo'd id
    // must not cost a full (possibly paper-profile) figure pass first.
    let scenario_ids = match resolve_scenarios(&options.scenarios) {
        Ok(ids) => ids,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let results = if options.figure.eq_ignore_ascii_case("none") {
        Vec::new()
    } else if options.figure.eq_ignore_ascii_case("all") {
        figures::run_all(&options.profile)
    } else {
        match figures::run_figure(&options.figure, &options.profile) {
            Some(result) => vec![result],
            None => {
                eprintln!(
                    "unknown figure '{}'; available: {:?}",
                    options.figure,
                    figures::all_figure_ids()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    // A traced run captures one route recorder per overlay per scenario (the
    // first repetition) without touching the measured results; the untraced
    // path is the exact legacy code path.
    let trace_config = options
        .trace
        .as_ref()
        .map(|_| baton_net::TraceConfig::default().with_sample(options.trace_sample));
    let mut scenarios = Vec::new();
    let mut traces: Vec<(String, baton_net::TraceBuffer)> = Vec::new();
    for id in scenario_ids {
        let (result, captured) = scenario::run_scenario_full(
            id,
            &options.profile,
            options.build,
            options.replicas,
            trace_config,
        )
        .expect("registered scenario");
        for (overlay, buffer) in captured {
            traces.push((format!("{id}:{overlay}"), buffer));
        }
        scenarios.push(result);
    }
    if let Some(path) = &options.trace {
        let dump = match options.trace_format {
            TraceFormat::Jsonl => baton_sim::render_trace_jsonl(&traces),
            TraceFormat::Chrome => baton_sim::render_trace_chrome(&traces),
        };
        if let Err(err) = std::fs::write(path, dump) {
            eprintln!("--trace: cannot write '{path}': {err}");
            return ExitCode::FAILURE;
        }
        // The anatomy summary goes to stderr so `--json`/`--csv` stdout
        // stays machine-parseable.
        eprint!("{}", baton_sim::trace_summary_table(&traces));
        eprintln!("trace written to {path}");
    }

    if options.json {
        // A figures-only (or scenarios-only) request emits the bare array so
        // fixture diffs stay byte-stable; both together wrap in one object.
        match (results.is_empty(), scenarios.is_empty()) {
            (_, true) => println!("{}", render_json(&results)),
            (true, false) => println!("{}", render_scenarios_json(&scenarios)),
            (false, false) => println!(
                "{{\n\"figures\": {},\n\"scenarios\": {}\n}}",
                render_json(&results),
                render_scenarios_json(&scenarios)
            ),
        }
    } else if options.csv {
        for result in &results {
            println!("# Figure {}", result.id);
            println!("{}", result.to_csv());
        }
        for result in &scenarios {
            println!("# Scenario {}", result.id);
            println!("{}", result.to_csv());
        }
    } else {
        if !results.is_empty() {
            println!("{}", render_report(&results));
        }
        for result in &scenarios {
            println!("{}", result.to_table());
        }
    }
    ExitCode::SUCCESS
}
