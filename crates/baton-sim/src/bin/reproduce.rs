//! `reproduce` — regenerate the BATON paper's evaluation figures and the
//! time-domain scenario reports.
//!
//! ```text
//! reproduce [--figure 8a|8b|...|8i|all|none] [--scenario latency_under_churn|flash_crowd|all|none]
//!           [--profile quick|full|paper|smoke] [--overlays NAME[,NAME...]] [--json] [--csv]
//! ```
//!
//! By default every figure is regenerated at the `quick` profile and printed
//! as text tables, followed by every scenario (latency percentiles and
//! throughput from the discrete-event engine).  `--profile full` uses the
//! paper's network sizes (1000–10,000 nodes) with a scaled-down bulk load;
//! `--profile paper` runs the publication's exact configuration (slow).
//!
//! `--overlays` narrows the comparison list (comma-separated series names,
//! case-insensitive — e.g. `--overlays D3-Tree`) so a single overlay can be
//! run or debugged in isolation; the BATON-only figures 8(f)–(i) are
//! unaffected.

use std::process::ExitCode;

use baton_sim::{figures, render_json, render_report, scenario, Profile};

struct Options {
    figure: String,
    scenario: String,
    profile: Profile,
    overlays: Vec<String>,
    json: bool,
    csv: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut figure = "all".to_owned();
    let mut scenario = "all".to_owned();
    let mut profile = Profile::quick();
    let mut overlays = Vec::new();
    let mut json = false;
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                figure = args.next().ok_or("--figure needs a value")?;
            }
            "--scenario" | "-s" => {
                scenario = args.next().ok_or("--scenario needs a value")?;
            }
            "--overlays" | "-o" => {
                let list = args.next().ok_or("--overlays needs a value")?;
                overlays.extend(
                    list.split(',')
                        .map(|name| name.trim().to_owned())
                        .filter(|name| !name.is_empty()),
                );
            }
            "--profile" | "-p" => {
                let name = args.next().ok_or("--profile needs a value")?;
                profile = match name.as_str() {
                    "smoke" => Profile::smoke(),
                    "quick" => Profile::quick(),
                    "full" => Profile::full(),
                    "paper" => Profile::paper(),
                    other => return Err(format!("unknown profile '{other}'")),
                };
            }
            "--json" => json = true,
            "--csv" => csv = true,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: reproduce [--figure 8a..8i|all|none] \
                     [--scenario {}|all|none] [--profile smoke|quick|full|paper] \
                     [--overlays NAME[,NAME...]] [--json] [--csv]",
                    scenario::all_scenario_ids().join("|")
                ))
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Options {
        figure,
        scenario,
        profile,
        overlays,
        json,
        csv,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(msg) = baton_sim::set_overlay_filter(&options.overlays) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }

    let results = if options.figure.eq_ignore_ascii_case("none") {
        Vec::new()
    } else if options.figure.eq_ignore_ascii_case("all") {
        figures::run_all(&options.profile)
    } else {
        match figures::run_figure(&options.figure, &options.profile) {
            Some(result) => vec![result],
            None => {
                eprintln!(
                    "unknown figure '{}'; available: {:?}",
                    options.figure,
                    figures::all_figure_ids()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    // Scenario reports only have a table rendering; the machine-readable
    // modes print the figure series exactly as before the event engine.
    // The identifier is still validated there, so a typo'd --scenario never
    // passes silently.
    let scenario_ids = if options.scenario.eq_ignore_ascii_case("none") {
        Vec::new()
    } else if options.scenario.eq_ignore_ascii_case("all") {
        scenario::all_scenario_ids()
    } else if let Some(id) = scenario::all_scenario_ids()
        .into_iter()
        .find(|id| id.eq_ignore_ascii_case(&options.scenario))
    {
        vec![id]
    } else {
        eprintln!(
            "unknown scenario '{}'; available: {:?}",
            options.scenario,
            scenario::all_scenario_ids()
        );
        return ExitCode::FAILURE;
    };
    let scenarios: Vec<_> = if options.json || options.csv {
        Vec::new()
    } else {
        scenario_ids
            .into_iter()
            .map(|id| scenario::run_scenario(id, &options.profile).expect("registered scenario"))
            .collect()
    };

    if options.json {
        println!("{}", render_json(&results));
    } else if options.csv {
        for result in &results {
            println!("# Figure {}", result.id);
            println!("{}", result.to_csv());
        }
    } else if !results.is_empty() {
        println!("{}", render_report(&results));
    }
    if !options.json && !options.csv {
        for result in &scenarios {
            println!("{}", result.to_table());
        }
    }
    ExitCode::SUCCESS
}
