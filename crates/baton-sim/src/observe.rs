//! Trace exporters and validators: the bridge between the route recorder
//! ([`baton_net::TraceBuffer`]) and files a human can open.
//!
//! Two formats:
//!
//! * **JSONL** ([`render_trace_jsonl`]) — one span per line, every hop with
//!   its link kind and virtual send/arrive microseconds.  Greppable, and
//!   machine-checkable with [`check_trace_jsonl`] (CI validates a smoke
//!   trace on every push).
//! * **Chrome `trace_event`** ([`render_trace_chrome`]) — loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): one process
//!   per overlay, one track per sampled operation, the operation span on
//!   top and each hop as a nested slice whose name is its link kind.
//!
//! [`trace_summary_table`] renders the aggregate route anatomy — hop counts
//! by link kind per overlay — as an aligned text table, the quick look that
//! needs no external viewer.

use std::fmt::Write as _;

use baton_net::{LinkKind, TraceBuffer};

use crate::report::json_string;

/// Renders captured trace buffers as JSONL: one span object per line,
/// prefixed with the overlay that produced it.
///
/// ```json
/// {"overlay":"BATON","op":17,"class":"baton.search","start_us":120,
///  "finish_us":980,"hops":[{"from":3,"to":9,"hop":1,"kind":"parent",
///  "message":"Search","sent_us":120,"arrive_us":160,"delivered":true,
///  "detour":false}]}
/// ```
pub fn render_trace_jsonl(traces: &[(String, TraceBuffer)]) -> String {
    let mut out = String::new();
    for (overlay, buffer) in traces {
        for span in buffer.spans() {
            let _ = write!(
                out,
                "{{\"overlay\":{},\"op\":{},\"class\":{},\"start_us\":{}",
                json_string(overlay),
                span.op,
                json_string(&span.class),
                span.started_at.as_micros()
            );
            if let Some(finished) = span.finished_at {
                let _ = write!(out, ",\"finish_us\":{}", finished.as_micros());
            }
            out.push_str(",\"hops\":[");
            for (i, hop) in span.hops.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"from\":{},\"to\":{},\"hop\":{},\"kind\":{},\"message\":{},\
                     \"sent_us\":{},\"arrive_us\":{},\"delivered\":{},\"detour\":{}}}",
                    hop.from.raw(),
                    hop.to.raw(),
                    hop.hop,
                    json_string(hop.kind.name()),
                    json_string(hop.message),
                    hop.sent_at.as_micros(),
                    hop.arrive_at.as_micros(),
                    hop.delivered,
                    hop.detour
                );
            }
            out.push_str("]}\n");
        }
    }
    out
}

/// Renders captured trace buffers in Chrome `trace_event` format (the
/// JSON-object flavour with a `traceEvents` array), loadable in
/// `chrome://tracing` and Perfetto.
///
/// Layout: one *process* per overlay (named via `process_name` metadata),
/// one *thread* (track) per sampled operation.  Each operation contributes
/// a complete ("X") event spanning begin→finish, and each hop a nested
/// complete event named after its link kind, from its virtual send to its
/// virtual arrival.  All timestamps are virtual microseconds, which is the
/// unit the format expects.
pub fn render_trace_chrome(traces: &[(String, TraceBuffer)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&event);
    };
    for (pid, (overlay, buffer)) in traces.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_string(overlay)
            ),
        );
        for span in buffer.spans() {
            let start = span.started_at.as_micros();
            let finish = span
                .finished_at
                .map(|t| t.as_micros())
                .unwrap_or(start)
                .max(start);
            push(
                &mut out,
                format!(
                    "{{\"name\":{},\"cat\":\"op\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{start},\"dur\":{},\"args\":{{\"op\":{},\
                     \"hops\":{},\"detours\":{}}}}}",
                    json_string(&span.class),
                    span.op,
                    finish - start,
                    span.op,
                    span.message_count(),
                    span.detour_count()
                ),
            );
            for hop in &span.hops {
                let sent = hop.sent_at.as_micros();
                let arrive = hop.arrive_at.as_micros().max(sent);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":{},\"cat\":\"hop\",\"ph\":\"X\",\"pid\":{pid},\
                         \"tid\":{},\"ts\":{sent},\"dur\":{},\"args\":{{\"from\":{},\
                         \"to\":{},\"message\":{},\"delivered\":{},\"detour\":{}}}}}",
                        json_string(hop.kind.name()),
                        span.op,
                        arrive - sent,
                        hop.from.raw(),
                        hop.to.raw(),
                        json_string(hop.message),
                        hop.delivered,
                        hop.detour
                    ),
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the aggregate route anatomy of captured traces as an aligned
/// text table: per overlay, the recorder's coverage (operations seen vs
/// sampled vs evicted) and the hop count of every link kind it emitted.
pub fn trace_summary_table(traces: &[(String, TraceBuffer)]) -> String {
    let mut out = String::from("Route anatomy (sampled spans, hops by link kind)\n");
    for (overlay, buffer) in traces {
        let _ = writeln!(
            out,
            "  {}: {} ops seen, {} sampled, {} evicted, {} spans held",
            overlay,
            buffer.ops_seen(),
            buffer.sampled(),
            buffer.evicted(),
            buffer.len()
        );
        let counts = buffer.hop_counts_by_kind();
        let total: u64 = counts.iter().sum();
        for kind in LinkKind::ALL {
            let count = counts[kind.index()];
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "    {:>13}: {:>8} hops ({:.1}%)",
                kind.name(),
                count,
                count as f64 / total.max(1) as f64 * 100.0
            );
        }
    }
    out
}

/// What [`check_trace_jsonl`] verified, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Span lines parsed.
    pub spans: u64,
    /// Hops across all spans.
    pub hops: u64,
}

/// Validates a JSONL trace dump produced by [`render_trace_jsonl`]:
/// every line must parse as a span object with the required fields, every
/// hop's `kind` must come from the closed [`LinkKind`] enum, every hop must
/// arrive at or after it was sent, and a span's hop *send* times must be
/// non-decreasing in record order (sends happen at the operation's frontier,
/// which only advances).  Returns counts of what was checked, or the first
/// violation with its line number.
pub fn check_trace_jsonl(text: &str) -> Result<TraceCheck, String> {
    let mut check = TraceCheck::default();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = index + 1;
        let at = |msg: &str| format!("line {lineno}: {msg}");
        let (value, rest) = json::parse(line).map_err(|e| at(&e))?;
        if !rest.trim().is_empty() {
            return Err(at("trailing bytes after the span object"));
        }
        let span = value.object().ok_or_else(|| at("span is not an object"))?;
        for key in ["overlay", "op", "class", "start_us", "hops"] {
            if !span.iter().any(|(k, _)| k == key) {
                return Err(at(&format!("span is missing \"{key}\"")));
            }
        }
        let field = |key: &str| span.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let start = field("start_us")
            .and_then(json::Value::number)
            .ok_or_else(|| at("\"start_us\" is not a number"))?;
        let finish = field("finish_us").and_then(json::Value::number);
        if let Some(finish) = finish {
            if finish < start {
                return Err(at("span finishes before it starts"));
            }
        }
        let hops = field("hops")
            .and_then(json::Value::array)
            .ok_or_else(|| at("\"hops\" is not an array"))?;
        let mut last_sent = f64::NEG_INFINITY;
        for (h, hop) in hops.iter().enumerate() {
            let hop = hop
                .object()
                .ok_or_else(|| at(&format!("hop {h} is not an object")))?;
            let field = |key: &str| hop.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let kind = field("kind")
                .and_then(json::Value::string)
                .ok_or_else(|| at(&format!("hop {h} has no \"kind\"")))?;
            if LinkKind::parse(kind).is_none() {
                return Err(at(&format!("hop {h} has unknown link kind \"{kind}\"")));
            }
            let sent = field("sent_us")
                .and_then(json::Value::number)
                .ok_or_else(|| at(&format!("hop {h}: \"sent_us\" is not a number")))?;
            let arrive = field("arrive_us")
                .and_then(json::Value::number)
                .ok_or_else(|| at(&format!("hop {h}: \"arrive_us\" is not a number")))?;
            if arrive < sent {
                return Err(at(&format!("hop {h} arrives before it was sent")));
            }
            if sent < start {
                return Err(at(&format!("hop {h} was sent before the span began")));
            }
            if sent < last_sent {
                return Err(at(&format!(
                    "hop {h} send time moved backwards (frontier order violated)"
                )));
            }
            last_sent = sent;
            for key in ["from", "to", "delivered", "detour"] {
                if field(key).is_none() {
                    return Err(at(&format!("hop {h} is missing \"{key}\"")));
                }
            }
            check.hops += 1;
        }
        check.spans += 1;
    }
    Ok(check)
}

/// A minimal recursive-descent JSON reader, just enough to validate the
/// trace dumps this module writes.  The build environment cannot fetch
/// `serde_json` (offline container), so — like the perf harness's schema
/// checker — validation parses by hand.
mod json {
    /// A parsed JSON value.  Object keys keep insertion order; numbers are
    /// `f64` (the traces only carry integers well inside the 2^53 window).
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Number(f64),
        /// A string literal.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn string(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Parses one JSON value off the front of `input`, returning it and the
    /// unconsumed remainder.
    pub fn parse(input: &str) -> Result<(Value, &str), String> {
        let rest = input.trim_start();
        let mut chars = rest.char_indices();
        let (_, first) = chars.next().ok_or("unexpected end of input")?;
        match first {
            'n' => literal(rest, "null", Value::Null),
            't' => literal(rest, "true", Value::Bool(true)),
            'f' => literal(rest, "false", Value::Bool(false)),
            '"' => {
                let (s, rest) = string(rest)?;
                Ok((Value::String(s), rest))
            }
            '[' => {
                let mut rest = rest[1..].trim_start();
                let mut items = Vec::new();
                if let Some(tail) = rest.strip_prefix(']') {
                    return Ok((Value::Array(items), tail));
                }
                loop {
                    let (item, tail) = parse(rest)?;
                    items.push(item);
                    rest = tail.trim_start();
                    if let Some(tail) = rest.strip_prefix(',') {
                        rest = tail.trim_start();
                    } else if let Some(tail) = rest.strip_prefix(']') {
                        return Ok((Value::Array(items), tail));
                    } else {
                        return Err("expected ',' or ']' in array".into());
                    }
                }
            }
            '{' => {
                let mut rest = rest[1..].trim_start();
                let mut fields = Vec::new();
                if let Some(tail) = rest.strip_prefix('}') {
                    return Ok((Value::Object(fields), tail));
                }
                loop {
                    let (key, tail) = string(rest.trim_start())?;
                    let tail = tail.trim_start();
                    let tail = tail
                        .strip_prefix(':')
                        .ok_or("expected ':' after object key")?;
                    let (value, tail) = parse(tail)?;
                    fields.push((key, value));
                    rest = tail.trim_start();
                    if let Some(tail) = rest.strip_prefix(',') {
                        rest = tail.trim_start();
                    } else if let Some(tail) = rest.strip_prefix('}') {
                        return Ok((Value::Object(fields), tail));
                    } else {
                        return Err("expected ',' or '}' in object".into());
                    }
                }
            }
            c if c == '-' || c.is_ascii_digit() => {
                let end = rest
                    .find(|c: char| {
                        !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                    })
                    .unwrap_or(rest.len());
                let number: f64 = rest[..end]
                    .parse()
                    .map_err(|_| format!("bad number '{}'", &rest[..end]))?;
                Ok((Value::Number(number), &rest[end..]))
            }
            other => Err(format!("unexpected character '{other}'")),
        }
    }

    fn literal<'a>(rest: &'a str, word: &str, value: Value) -> Result<(Value, &'a str), String> {
        rest.strip_prefix(word)
            .map(|tail| (value, tail))
            .ok_or_else(|| format!("expected '{word}'"))
    }

    /// Parses a string literal (assumes `rest` starts with `"`).
    fn string(rest: &str) -> Result<(String, &str), String> {
        let inner = rest.strip_prefix('"').ok_or("expected string")?;
        let mut out = String::new();
        let mut chars = inner.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((out, &inner[i + 1..])),
                '\\' => {
                    let (_, escaped) = chars.next().ok_or("dangling escape")?;
                    match escaped {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, d) = chars.next().ok_or("short \\u escape")?;
                                code = code * 16 + d.to_digit(16).ok_or("bad \\u escape")?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baton_net::{SimTime, TraceConfig};

    fn captured_buffer() -> (String, TraceBuffer) {
        // Drive a tiny BATON system with tracing on: real spans, real
        // link kinds.
        use baton_net::Overlay;
        let mut system = baton_core::BatonSystem::build(Default::default(), 7, 30).unwrap();
        Overlay::set_latency_model(
            &mut system,
            baton_net::LatencyModel::uniform(SimTime::from_millis(5), SimTime::from_millis(20), 7),
        );
        Overlay::set_trace(&mut system, TraceConfig::default());
        for i in 0..40u64 {
            system.insert(1 + i * 20_999_983, i).unwrap();
            system.search_exact_count(1 + i * 20_999_983).unwrap();
        }
        let buffer = Overlay::take_trace(&mut system).expect("tracing was enabled");
        assert!(!buffer.is_empty());
        ("BATON".to_owned(), buffer)
    }

    #[test]
    fn jsonl_dump_round_trips_through_the_validator() {
        let traces = vec![captured_buffer()];
        let dump = render_trace_jsonl(&traces);
        assert!(!dump.is_empty());
        let check = check_trace_jsonl(&dump).expect("dump validates");
        assert_eq!(
            check.spans,
            traces[0].1.len() as u64,
            "one line per held span"
        );
        assert!(check.hops > 0);
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(check_trace_jsonl("not json\n").is_err());
        // Well-formed JSON, wrong schema.
        assert!(check_trace_jsonl("{\"overlay\":\"X\"}\n").is_err());
        // Unknown link kind.
        let bad_kind = "{\"overlay\":\"X\",\"op\":1,\"class\":\"c\",\"start_us\":0,\
             \"hops\":[{\"from\":1,\"to\":2,\"hop\":1,\"kind\":\"warp\",\
             \"message\":\"m\",\"sent_us\":0,\"arrive_us\":1,\
             \"delivered\":true,\"detour\":false}]}";
        let err = check_trace_jsonl(bad_kind).unwrap_err();
        assert!(err.contains("warp"), "{err}");
        // Arrival before send.
        let time_travel = bad_kind
            .replace("\"warp\"", "\"parent\"")
            .replace("\"arrive_us\":1", "\"arrive_us\":-1");
        let err = check_trace_jsonl(&time_travel).unwrap_err();
        assert!(err.contains("arrives before"), "{err}");
        // Send times must follow frontier order.
        let regressing = "{\"overlay\":\"X\",\"op\":1,\"class\":\"c\",\"start_us\":0,\
             \"hops\":[{\"from\":1,\"to\":2,\"hop\":1,\"kind\":\"parent\",\
             \"message\":\"m\",\"sent_us\":10,\"arrive_us\":20,\
             \"delivered\":true,\"detour\":false},\
             {\"from\":2,\"to\":3,\"hop\":2,\"kind\":\"child\",\
             \"message\":\"m\",\"sent_us\":5,\"arrive_us\":25,\
             \"delivered\":true,\"detour\":false}]}";
        let err = check_trace_jsonl(regressing).unwrap_err();
        assert!(err.contains("frontier"), "{err}");
    }

    #[test]
    fn chrome_dump_parses_and_names_processes() {
        let traces = vec![captured_buffer()];
        let dump = render_trace_chrome(&traces);
        let (value, rest) = json::parse(&dump).expect("chrome dump is valid JSON");
        assert!(rest.trim().is_empty());
        let root = value.object().expect("root object");
        let events = root
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.array())
            .expect("traceEvents array");
        assert!(events.len() > 1);
        let meta = events[0].object().expect("metadata event");
        assert!(meta
            .iter()
            .any(|(k, v)| k == "ph" && v.string() == Some("M")));
        // Every non-metadata event is a complete event with ts and dur.
        for event in &events[1..] {
            let fields = event.object().expect("event object");
            let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            assert_eq!(get("ph").and_then(|v| v.string()), Some("X"));
            assert!(get("ts").and_then(|v| v.number()).is_some());
            assert!(get("dur").and_then(|v| v.number()).unwrap_or(-1.0) >= 0.0);
        }
    }

    #[test]
    fn summary_table_breaks_hops_down_by_kind() {
        let traces = vec![captured_buffer()];
        let table = trace_summary_table(&traces);
        assert!(table.contains("BATON"));
        assert!(table.contains("sampled"));
        // A BATON routing walk crosses routing-table links.
        assert!(table.contains("routing_table"), "{table}");
    }
}
