//! Experiment profiles: how big, how many repetitions, how much data.
//!
//! The paper's configuration (§V) is: network sizes 1000–10,000 nodes,
//! `1000 × N` inserted values, 1000 exact and 1000 range queries, 10
//! repetitions with different join/leave orders.  Running that verbatim
//! takes a long while in a single-threaded simulator, so the harness
//! supports scaled-down profiles that keep the *shape* of every curve while
//! the full-scale profile remains available for a faithful run.

/// Scale parameters of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Network sizes (the x-axis of most figures).
    pub network_sizes: Vec<usize>,
    /// Repetitions per configuration (the paper uses 10).
    pub repetitions: usize,
    /// Fraction of the paper's `1000 × N` bulk load to insert.
    pub data_scale: f64,
    /// Fraction of the paper's 1000 + 1000 query workload to run.
    pub query_scale: f64,
    /// Number of join and leave operations measured per configuration.
    pub churn_ops: usize,
    /// Base RNG seed; repetition `r` uses `seed + r`.
    pub seed: u64,
}

impl Profile {
    /// The paper's exact configuration.  Expect hours of simulation time.
    pub fn paper() -> Self {
        Self {
            network_sizes: (1..=10).map(|i| i * 1000).collect(),
            repetitions: 10,
            data_scale: 1.0,
            query_scale: 1.0,
            churn_ops: 200,
            seed: 2005,
        }
    }

    /// The paper's network sizes with a reduced bulk load and 3 repetitions:
    /// the default of the `reproduce --full` run (minutes, not hours).
    pub fn full() -> Self {
        Self {
            network_sizes: (1..=10).map(|i| i * 1000).collect(),
            repetitions: 3,
            data_scale: 0.02,
            query_scale: 1.0,
            churn_ops: 100,
            seed: 2005,
        }
    }

    /// Small networks, enough to see every trend: the default of the
    /// `reproduce` binary and of `cargo bench`.
    pub fn quick() -> Self {
        Self {
            network_sizes: vec![125, 250, 500, 1000, 2000],
            repetitions: 2,
            data_scale: 0.02,
            query_scale: 0.1,
            churn_ops: 40,
            seed: 2005,
        }
    }

    /// Tiny profile used by the unit/integration tests.
    pub fn smoke() -> Self {
        Self {
            network_sizes: vec![40, 80],
            repetitions: 1,
            data_scale: 0.01,
            query_scale: 0.01,
            churn_ops: 8,
            seed: 2005,
        }
    }

    /// Number of values bulk-loaded into a network of `n` nodes.
    pub fn dataset_size(&self, n: usize) -> usize {
        ((n as f64) * 1000.0 * self.data_scale).round().max(1.0) as usize
    }

    /// Number of exact (and of range) queries per configuration.
    pub fn query_count(&self) -> usize {
        ((1000.0 * self.query_scale).round() as usize).max(1)
    }

    /// Seed for repetition `rep`.
    pub fn rep_seed(&self, rep: usize) -> u64 {
        self.seed + rep as u64 * 7919
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_the_publication() {
        let p = Profile::paper();
        assert_eq!(p.network_sizes.first(), Some(&1000));
        assert_eq!(p.network_sizes.last(), Some(&10000));
        assert_eq!(p.repetitions, 10);
        assert_eq!(p.dataset_size(1000), 1_000_000);
        assert_eq!(p.query_count(), 1000);
    }

    #[test]
    fn scaled_profiles_shrink_but_never_vanish() {
        let q = Profile::quick();
        assert!(q.dataset_size(100) >= 1);
        assert!(q.query_count() >= 1);
        let s = Profile::smoke();
        assert!(s.dataset_size(40) >= 1);
        assert!(s.network_sizes.len() >= 2);
    }

    #[test]
    fn rep_seeds_differ() {
        let p = Profile::quick();
        assert_ne!(p.rep_seed(0), p.rep_seed(1));
    }
}
