//! Time-domain scenario drivers: virtual latency and throughput, measured
//! with the discrete-event engine — the report section the paper's
//! count-only evaluation cannot produce.
//!
//! Two scenarios are registered:
//!
//! * [`latency_under_churn`] — the template: an open-loop mix of searches,
//!   range queries, inserts, joins, leaves and failures over log-normal
//!   links, with 10% of the peers churning per virtual minute;
//! * [`flash_crowd`] — the same substrate with no churn but a 20-second
//!   burst window during which the search/range/insert key distribution
//!   collapses onto a hot 1% slice of the domain, stressing whichever peers
//!   own the hot keys.
//!
//! Every scenario runs over the same [`OverlaySpec`] list as the Figure-8
//! drivers, so new baselines appear in the latency reports the same way
//! they appear in the message-count figures: by adding one spec.
//!
//! Future workloads (correlated regional failures, degraded links, mixed
//! read/write skew) should follow the same shape: build an
//! [`OpenLoopWorkload`], pick a seeded latency model, call
//! [`run_open_loop`](baton_workload::run_open_loop), and summarise
//! per-class percentiles into a [`ScenarioResult`].

use std::fmt::Write as _;

use baton_net::{LatencyModel, SimRng, SimTime};
use baton_workload::{
    run_open_loop, HotBurst, KeyDistribution, LatencySummary, OpClass, OpenLoopWorkload,
    DOMAIN_HIGH, DOMAIN_LOW,
};

use crate::driver::{load_overlay, standard_overlays};
use crate::profile::Profile;

/// Latency percentiles of one operation class, in milliseconds of virtual
/// time.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassLatency {
    /// Operation class name (`"search"`, `"join"`, …).
    pub class: String,
    /// Completed operations of the class.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
}

/// One overlay's row of a scenario: per-class latency percentiles plus
/// throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSeries {
    /// Overlay name ("BATON", "Chord", …).
    pub overlay: String,
    /// Per-class latency summaries, in class-name order.
    pub classes: Vec<ClassLatency>,
    /// Completed operations per virtual second, averaged over repetitions.
    pub throughput: f64,
    /// Virtual seconds the run covered (averaged over repetitions).
    pub virtual_seconds: f64,
    /// Total messages across all repetitions.
    pub messages: u64,
    /// Operations skipped, broken out per [`OpClass`] (in class order), so
    /// "Chord skipped ranges" is distinguishable from "node-floor skipped
    /// leaves".  Classes with zero skips are omitted.
    pub skipped: Vec<(String, u64)>,
}

impl ScenarioSeries {
    /// Total operations skipped across all classes.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.iter().map(|(_, n)| n).sum()
    }
}

/// The result of one time-domain scenario across every overlay.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Scenario identifier (`"latency_under_churn"`).
    pub id: String,
    /// Human-readable description of the setup.
    pub title: String,
    /// One row per overlay.
    pub series: Vec<ScenarioSeries>,
}

impl ScenarioResult {
    /// Renders the scenario as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Scenario {} — {}", self.id, self.title);
        for series in &self.series {
            let skipped = if series.skipped.is_empty() {
                "0 skipped".to_owned()
            } else {
                let detail: Vec<String> = series
                    .skipped
                    .iter()
                    .map(|(class, n)| format!("{class}: {n}"))
                    .collect();
                format!("{} skipped ({})", series.skipped_total(), detail.join(", "))
            };
            let _ = writeln!(
                out,
                "  {}: {:.2} ops per virtual second over {:.1}s, {} messages, {}",
                series.overlay, series.throughput, series.virtual_seconds, series.messages, skipped
            );
            let _ = writeln!(
                out,
                "    {:>8} | {:>7} | {:>10} | {:>10} | {:>10} | {:>10}",
                "class", "count", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
            );
            for class in &series.classes {
                let _ = writeln!(
                    out,
                    "    {:>8} | {:>7} | {:>10.2} | {:>10.2} | {:>10.2} | {:>10.2}",
                    class.class,
                    class.count,
                    class.mean_ms,
                    class.p50_ms,
                    class.p95_ms,
                    class.p99_ms
                );
            }
        }
        out
    }
}

/// Runs `workload` against every overlay of [`standard_overlays`] at size
/// `n`, over seeded log-normal 40ms links, aggregating the profile's
/// repetitions into one [`ScenarioSeries`] per overlay.
fn measure(profile: &Profile, workload: &OpenLoopWorkload, n: usize) -> Vec<ScenarioSeries> {
    let mut series = Vec::new();
    for spec in standard_overlays() {
        let mut latencies: std::collections::BTreeMap<&'static str, Vec<SimTime>> =
            Default::default();
        let mut skipped: std::collections::BTreeMap<&'static str, u64> = Default::default();
        let mut messages = 0u64;
        let mut throughput_sum = 0.0f64;
        let mut seconds_sum = 0.0f64;
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let mut overlay = spec.build(profile, n, seed);
            load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
            overlay.set_latency_model(LatencyModel::log_normal(
                SimTime::from_millis(40),
                0.5,
                seed ^ 0x1A7E,
            ));
            let mut rng = SimRng::seeded(seed ^ 0x0BE7);
            let events = workload.schedule(&mut rng.derive(1));
            let outcome = run_open_loop(&mut *overlay, &events, workload, &mut rng, n / 2)
                .expect("open-loop run cannot fail");
            for (class, count) in &outcome.skipped {
                *skipped.entry(class).or_insert(0) += count;
            }
            messages += outcome.messages;
            throughput_sum += outcome.throughput();
            seconds_sum += outcome.makespan.as_secs_f64();
            for (class, samples) in &outcome.latencies {
                latencies.entry(class).or_default().extend(samples);
            }
        }
        let reps = profile.repetitions.max(1) as f64;
        let classes = OpClass::ALL
            .iter()
            .filter_map(|class| {
                let samples = latencies.get(class.name())?;
                let summary = LatencySummary::from_samples(samples)?;
                Some(ClassLatency {
                    class: class.name().to_owned(),
                    count: summary.count as u64,
                    mean_ms: summary.mean.as_millis_f64(),
                    p50_ms: summary.p50.as_millis_f64(),
                    p95_ms: summary.p95.as_millis_f64(),
                    p99_ms: summary.p99.as_millis_f64(),
                })
            })
            .collect();
        series.push(ScenarioSeries {
            overlay: spec.series.to_owned(),
            classes,
            throughput: throughput_sum / reps,
            virtual_seconds: seconds_sum / reps,
            messages,
            skipped: OpClass::ALL
                .iter()
                .filter_map(|class| {
                    let count = *skipped.get(class.name())?;
                    (count > 0).then(|| (class.name().to_owned(), count))
                })
                .collect(),
        });
    }
    series
}

/// The `latency_under_churn` scenario: search/insert/range traffic measured
/// while 10% of the peers join or leave (and a few abruptly fail) per
/// virtual minute, over seeded log-normal links with a 40ms median.
///
/// Runs every overlay of [`standard_overlays`] at the profile's largest
/// network size, repeated and aggregated per the profile.
pub fn latency_under_churn(profile: &Profile) -> ScenarioResult {
    let n = *profile
        .network_sizes
        .last()
        .expect("profile has network sizes");
    let duration = SimTime::from_secs(60);
    let search_rate = (profile.query_count() as f64 / duration.as_secs_f64()).max(0.2);
    let mut workload = OpenLoopWorkload::churn_under_load(duration, search_rate, n, 0.10);
    workload.insert_rate = search_rate / 2.0;
    workload.range_rate = search_rate / 4.0;
    // A quarter of the departures are abrupt failures (graceful on overlays
    // without a failure protocol).
    workload.fail_rate = workload.leave_rate / 4.0;
    workload.leave_rate -= workload.fail_rate;
    workload.distribution = KeyDistribution::Uniform;

    ScenarioResult {
        id: "latency_under_churn".to_owned(),
        title: format!(
            "operation latency and throughput, N = {n}, 10% churn per virtual minute, \
             log-normal links (median 40ms, σ = 0.5)"
        ),
        series: measure(profile, &workload, n),
    }
}

/// The `flash_crowd` scenario: a steady open-loop mix whose search, range
/// and insert keys collapse onto a hot 1% slice of the domain for the
/// middle 20 virtual seconds of the run — the whole crowd hammers the few
/// peers owning the hot slice, and the per-class percentiles show how each
/// overlay absorbs it.
pub fn flash_crowd(profile: &Profile) -> ScenarioResult {
    let n = *profile
        .network_sizes
        .last()
        .expect("profile has network sizes");
    let duration = SimTime::from_secs(60);
    // A denser query stream than the churn scenario: the crowd is the load.
    let search_rate = (profile.query_count() as f64 / duration.as_secs_f64() * 5.0).max(2.0);
    let mut workload = OpenLoopWorkload::queries_only(duration, search_rate);
    workload.insert_rate = search_rate / 4.0;
    workload.range_rate = search_rate / 8.0;
    let hot_width = (DOMAIN_HIGH - DOMAIN_LOW) / 100;
    workload.hot_burst = Some(HotBurst {
        from: SimTime::from_secs(20),
        until: SimTime::from_secs(40),
        low: DOMAIN_LOW,
        high: DOMAIN_LOW + hot_width,
    });

    ScenarioResult {
        id: "flash_crowd".to_owned(),
        title: format!(
            "flash crowd, N = {n}: keys collapse onto the hottest 1% of the domain \
             during t = [20s, 40s), log-normal links (median 40ms, σ = 0.5)"
        ),
        series: measure(profile, &workload, n),
    }
}

/// Runs a scenario by identifier; `None` for an unknown one.
pub fn run_scenario(id: &str, profile: &Profile) -> Option<ScenarioResult> {
    match id.to_ascii_lowercase().as_str() {
        "latency_under_churn" => Some(latency_under_churn(profile)),
        "flash_crowd" => Some(flash_crowd(profile)),
        _ => None,
    }
}

/// Identifiers of every scenario.
pub fn all_scenario_ids() -> Vec<&'static str> {
    vec!["latency_under_churn", "flash_crowd"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_under_churn_reports_every_overlay_with_ordered_percentiles() {
        let profile = Profile::smoke();
        let result = latency_under_churn(&profile);
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(
                series.throughput.is_finite() && series.throughput > 0.0,
                "{} throughput {}",
                series.overlay,
                series.throughput
            );
            assert!(series.virtual_seconds > 0.0);
            assert!(
                !series.classes.is_empty(),
                "{} has no classes",
                series.overlay
            );
            for class in &series.classes {
                assert!(class.count > 0);
                for v in [class.mean_ms, class.p50_ms, class.p95_ms, class.p99_ms] {
                    assert!(v.is_finite() && v >= 0.0, "{v} not finite");
                }
                assert!(
                    class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                    "{}::{} percentiles out of order",
                    series.overlay,
                    class.class
                );
            }
        }
        // Searches route over >= 1 hop of ~40ms links: medians must be in a
        // sane band, not zero and not absurd.
        let baton = &result.series[0];
        let search = baton.classes.iter().find(|c| c.class == "search").unwrap();
        assert!(
            search.p50_ms > 1.0,
            "search p50 {} too small",
            search.p50_ms
        );
        let table = result.to_table();
        assert!(table.contains("latency_under_churn"));
        assert!(table.contains("BATON"));
        assert!(table.contains("D3-Tree"));
    }

    #[test]
    fn skips_are_attributed_to_classes() {
        let profile = Profile::smoke();
        let result = latency_under_churn(&profile);
        // Chord cannot answer range queries: every one of its skips must be
        // attributed, and the range class must be among them.
        let chord = result
            .series
            .iter()
            .find(|s| s.overlay == "Chord")
            .expect("Chord series");
        let ranged: u64 = chord
            .skipped
            .iter()
            .filter(|(class, _)| class == "range")
            .map(|(_, n)| *n)
            .sum();
        assert!(ranged > 0, "Chord skipped no ranges: {:?}", chord.skipped);
        assert_eq!(
            chord.skipped_total(),
            chord.skipped.iter().map(|(_, n)| n).sum::<u64>()
        );
        // Fully capable overlays never skip ranges.
        let baton = &result.series[0];
        assert!(baton.skipped.iter().all(|(class, _)| class != "range"));
    }

    #[test]
    fn flash_crowd_reports_every_overlay() {
        let profile = Profile::smoke();
        let result = flash_crowd(&profile);
        assert_eq!(result.series.len(), 4);
        for series in &result.series {
            assert!(series.throughput > 0.0, "{} idle", series.overlay);
            let search = series
                .classes
                .iter()
                .find(|c| c.class == "search")
                .unwrap_or_else(|| panic!("{} ran no searches", series.overlay));
            assert!(search.count > 0);
            assert!(search.p50_ms > 1.0);
        }
        let table = result.to_table();
        assert!(table.contains("flash_crowd"));
        assert!(table.contains("hottest 1%"));
    }

    #[test]
    fn scenario_registry_resolves_ids() {
        assert_eq!(
            all_scenario_ids(),
            vec!["latency_under_churn", "flash_crowd"]
        );
        let profile = Profile::smoke();
        assert!(run_scenario("nonsense", &profile).is_none());
        assert!(run_scenario("LATENCY_UNDER_CHURN", &profile).is_some());
        assert!(run_scenario("Flash_Crowd", &profile).is_some());
    }
}
