//! Time-domain scenario drivers: virtual latency and throughput, measured
//! with the discrete-event engine — the report section the paper's
//! count-only evaluation cannot produce.
//!
//! The first (and template) scenario is [`latency_under_churn`]: an
//! open-loop mix of searches, range queries, inserts, joins, leaves and
//! failures over log-normal links, with 10% of the peers churning per
//! virtual minute.  It runs over the same [`OverlaySpec`] list as every
//! Figure-8 driver, so new baselines appear in the latency report the same
//! way they appear in the message-count figures: by adding one spec.
//!
//! Future workloads (flash crowds, correlated failures, degraded links)
//! should follow the same shape: build an [`OpenLoopWorkload`], pick a
//! seeded [`LatencyModel`], call
//! [`run_open_loop`](baton_workload::run_open_loop), and summarise per-class
//! percentiles into a [`ScenarioResult`].

use std::fmt::Write as _;

use baton_net::{LatencyModel, SimRng, SimTime};
use baton_workload::{run_open_loop, KeyDistribution, LatencySummary, OpClass, OpenLoopWorkload};

use crate::driver::{load_overlay, standard_overlays};
use crate::profile::Profile;

/// Latency percentiles of one operation class, in milliseconds of virtual
/// time.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassLatency {
    /// Operation class name (`"search"`, `"join"`, …).
    pub class: String,
    /// Completed operations of the class.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
}

/// One overlay's row of a scenario: per-class latency percentiles plus
/// throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSeries {
    /// Overlay name ("BATON", "Chord", …).
    pub overlay: String,
    /// Per-class latency summaries, in class-name order.
    pub classes: Vec<ClassLatency>,
    /// Completed operations per virtual second, averaged over repetitions.
    pub throughput: f64,
    /// Virtual seconds the run covered (averaged over repetitions).
    pub virtual_seconds: f64,
    /// Total messages across all repetitions.
    pub messages: u64,
    /// Operations skipped (node floor / unsupported class).
    pub skipped: u64,
}

/// The result of one time-domain scenario across every overlay.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Scenario identifier (`"latency_under_churn"`).
    pub id: String,
    /// Human-readable description of the setup.
    pub title: String,
    /// One row per overlay.
    pub series: Vec<ScenarioSeries>,
}

impl ScenarioResult {
    /// Renders the scenario as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Scenario {} — {}", self.id, self.title);
        for series in &self.series {
            let _ = writeln!(
                out,
                "  {}: {:.2} ops per virtual second over {:.1}s, {} messages, {} skipped",
                series.overlay,
                series.throughput,
                series.virtual_seconds,
                series.messages,
                series.skipped
            );
            let _ = writeln!(
                out,
                "    {:>8} | {:>7} | {:>10} | {:>10} | {:>10} | {:>10}",
                "class", "count", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
            );
            for class in &series.classes {
                let _ = writeln!(
                    out,
                    "    {:>8} | {:>7} | {:>10.2} | {:>10.2} | {:>10.2} | {:>10.2}",
                    class.class,
                    class.count,
                    class.mean_ms,
                    class.p50_ms,
                    class.p95_ms,
                    class.p99_ms
                );
            }
        }
        out
    }
}

/// The `latency_under_churn` scenario: search/insert/range traffic measured
/// while 10% of the peers join or leave (and a few abruptly fail) per
/// virtual minute, over seeded log-normal links with a 40ms median.
///
/// Runs every overlay of [`standard_overlays`] at the profile's largest
/// network size, repeated and aggregated per the profile.
pub fn latency_under_churn(profile: &Profile) -> ScenarioResult {
    let n = *profile
        .network_sizes
        .last()
        .expect("profile has network sizes");
    let duration = SimTime::from_secs(60);
    let search_rate = (profile.query_count() as f64 / duration.as_secs_f64()).max(0.2);
    let mut workload = OpenLoopWorkload::churn_under_load(duration, search_rate, n, 0.10);
    workload.insert_rate = search_rate / 2.0;
    workload.range_rate = search_rate / 4.0;
    // A quarter of the departures are abrupt failures (graceful on overlays
    // without a failure protocol).
    workload.fail_rate = workload.leave_rate / 4.0;
    workload.leave_rate -= workload.fail_rate;
    workload.distribution = KeyDistribution::Uniform;

    let mut result = ScenarioResult {
        id: "latency_under_churn".to_owned(),
        title: format!(
            "operation latency and throughput, N = {n}, 10% churn per virtual minute, \
             log-normal links (median 40ms, σ = 0.5)"
        ),
        series: Vec::new(),
    };
    for spec in standard_overlays() {
        let mut latencies: std::collections::BTreeMap<&'static str, Vec<SimTime>> =
            Default::default();
        let mut skipped = 0u64;
        let mut messages = 0u64;
        let mut throughput_sum = 0.0f64;
        let mut seconds_sum = 0.0f64;
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let mut overlay = spec.build(profile, n, seed);
            load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
            overlay.set_latency_model(LatencyModel::log_normal(
                SimTime::from_millis(40),
                0.5,
                seed ^ 0x1A7E,
            ));
            let mut rng = SimRng::seeded(seed ^ 0x0BE7);
            let events = workload.schedule(&mut rng.derive(1));
            let outcome = run_open_loop(&mut *overlay, &events, &workload, &mut rng, n / 2)
                .expect("open-loop run cannot fail");
            skipped += outcome.skipped;
            messages += outcome.messages;
            throughput_sum += outcome.throughput();
            seconds_sum += outcome.makespan.as_secs_f64();
            for (class, samples) in &outcome.latencies {
                latencies.entry(class).or_default().extend(samples);
            }
        }
        let reps = profile.repetitions.max(1) as f64;
        let classes = OpClass::ALL
            .iter()
            .filter_map(|class| {
                let samples = latencies.get(class.name())?;
                let summary = LatencySummary::from_samples(samples)?;
                Some(ClassLatency {
                    class: class.name().to_owned(),
                    count: summary.count as u64,
                    mean_ms: summary.mean.as_millis_f64(),
                    p50_ms: summary.p50.as_millis_f64(),
                    p95_ms: summary.p95.as_millis_f64(),
                    p99_ms: summary.p99.as_millis_f64(),
                })
            })
            .collect();
        result.series.push(ScenarioSeries {
            overlay: spec.series.to_owned(),
            classes,
            throughput: throughput_sum / reps,
            virtual_seconds: seconds_sum / reps,
            messages,
            skipped,
        });
    }
    result
}

/// Runs a scenario by identifier; `None` for an unknown one.
pub fn run_scenario(id: &str, profile: &Profile) -> Option<ScenarioResult> {
    match id.to_ascii_lowercase().as_str() {
        "latency_under_churn" => Some(latency_under_churn(profile)),
        _ => None,
    }
}

/// Identifiers of every scenario.
pub fn all_scenario_ids() -> Vec<&'static str> {
    vec!["latency_under_churn"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_under_churn_reports_every_overlay_with_ordered_percentiles() {
        let profile = Profile::smoke();
        let result = latency_under_churn(&profile);
        assert_eq!(result.series.len(), 3);
        for series in &result.series {
            assert!(
                series.throughput.is_finite() && series.throughput > 0.0,
                "{} throughput {}",
                series.overlay,
                series.throughput
            );
            assert!(series.virtual_seconds > 0.0);
            assert!(
                !series.classes.is_empty(),
                "{} has no classes",
                series.overlay
            );
            for class in &series.classes {
                assert!(class.count > 0);
                for v in [class.mean_ms, class.p50_ms, class.p95_ms, class.p99_ms] {
                    assert!(v.is_finite() && v >= 0.0, "{v} not finite");
                }
                assert!(
                    class.p50_ms <= class.p95_ms && class.p95_ms <= class.p99_ms,
                    "{}::{} percentiles out of order",
                    series.overlay,
                    class.class
                );
            }
        }
        // Searches route over >= 1 hop of ~40ms links: medians must be in a
        // sane band, not zero and not absurd.
        let baton = &result.series[0];
        let search = baton.classes.iter().find(|c| c.class == "search").unwrap();
        assert!(
            search.p50_ms > 1.0,
            "search p50 {} too small",
            search.p50_ms
        );
        let table = result.to_table();
        assert!(table.contains("latency_under_churn"));
        assert!(table.contains("BATON"));
    }

    #[test]
    fn scenario_registry_resolves_ids() {
        assert_eq!(all_scenario_ids(), vec!["latency_under_churn"]);
        let profile = Profile::smoke();
        assert!(run_scenario("nonsense", &profile).is_none());
        assert!(run_scenario("LATENCY_UNDER_CHURN", &profile).is_some());
    }
}
