//! `reproduce --serve-check` — snapshot-vs-routed answer parity.
//!
//! Builds every registered overlay at a small scale, loads it, exports its
//! [`baton_net::RoutingSnapshot`] and checks that a sample of exact and
//! range queries answered **from the snapshot** (the lock-free serve path,
//! zero event-queue traffic) return exactly the match counts the routed
//! event-engine path returns.  The check writes only to its report — a
//! `--serve-check` run's stdout is byte-identical to a run without the
//! flag, so the committed scenario fixtures keep diffing clean while CI
//! asserts the serve path agrees with the engine.
//!
//! Match counts are the contract; hop and message counts are not compared
//! (the snapshot's greedy link walk is an approximation of the protocol
//! route, and the routed side includes locate-phase traffic).

use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator, DOMAIN_HIGH, DOMAIN_LOW};
use rand::Rng;

use crate::driver::{load_overlay, standard_overlays};
use crate::profile::Profile;

/// What one [`run_serve_check`] pass covered.
#[derive(Clone, Debug, Default)]
pub struct ServeCheckReport {
    /// Overlays checked (every registered overlay exports a snapshot).
    pub overlays: usize,
    /// Exact queries compared across all overlays.
    pub exact_checked: u64,
    /// Range queries compared (range-capable overlays only).
    pub range_checked: u64,
}

/// Nodes per overlay for the check build: small enough to be instant,
/// large enough for multi-level routing structure.
const CHECK_NODES: usize = 48;

/// Exact queries per overlay: half drawn from the loaded dataset
/// (guaranteed hits, including duplicate keys), half uniform (mostly
/// misses).
const EXACT_PER_OVERLAY: usize = 200;

/// Range queries per overlay, spans from a point up to a quarter of the
/// domain (plus the edge cases below).
const RANGE_PER_OVERLAY: usize = 60;

/// Runs the parity check at the given profile's seed, returning the
/// coverage report or the first mismatch.
pub fn run_serve_check(profile: &Profile) -> Result<ServeCheckReport, String> {
    let mut report = ServeCheckReport::default();
    for spec in standard_overlays() {
        let mut overlay = spec.build(profile, CHECK_NODES, profile.seed);
        let data = load_overlay(
            profile,
            &mut *overlay,
            KeyDistribution::Uniform,
            profile.seed,
        );
        let snapshot = overlay
            .routing_snapshot()
            .ok_or_else(|| format!("{}: no routing snapshot exported", spec.series))?;
        if snapshot.range_supported() != spec.serve.range {
            return Err(format!(
                "{}: snapshot range support {} but the spec registry says {}",
                spec.series,
                snapshot.range_supported(),
                spec.serve.range
            ));
        }
        let mut rng = SimRng::seeded(profile.seed ^ 0x5E57);
        let generator = KeyGenerator::paper(KeyDistribution::Uniform);
        let mut counters = baton_net::ServeCounters::default();

        for query in 0..EXACT_PER_OVERLAY {
            let key = if query % 2 == 0 && !data.is_empty() {
                data[rng.gen_range(0..data.len())].0
            } else {
                generator.next_key(&mut rng)
            };
            let hint = rng.gen::<u64>();
            let served = snapshot.exact(key, hint, &mut counters);
            let routed = overlay
                .search_exact(key)
                .map_err(|e| format!("{}: routed exact({key}) failed: {e}", spec.series))?;
            if served.matches as usize != routed.matches {
                return Err(format!(
                    "{}: exact({key}) snapshot answered {} matches, engine {}",
                    spec.series, served.matches, routed.matches
                ));
            }
            report.exact_checked += 1;
        }

        if spec.serve.range {
            // Edge spans first: empty, single-point, full-domain, and a
            // span clamped at the domain's top edge.
            let mut ranges: Vec<(u64, u64)> = vec![
                (DOMAIN_LOW, DOMAIN_LOW),
                (DOMAIN_LOW, DOMAIN_HIGH),
                (DOMAIN_HIGH - 5, DOMAIN_HIGH),
                (DOMAIN_HIGH / 2, DOMAIN_HIGH / 2 + 1),
            ];
            while ranges.len() < RANGE_PER_OVERLAY {
                let low = generator.next_key(&mut rng);
                let span = rng.gen_range(0..=(DOMAIN_HIGH - DOMAIN_LOW) / 4);
                ranges.push((low, low.saturating_add(span).min(DOMAIN_HIGH)));
            }
            for (low, high) in ranges {
                let hint = rng.gen::<u64>();
                let served = snapshot.range(low, high, hint, &mut counters);
                let routed = overlay.search_range(low, high).map_err(|e| {
                    format!("{}: routed range({low}, {high}) failed: {e}", spec.series)
                })?;
                if served.matches as usize != routed.matches {
                    return Err(format!(
                        "{}: range({low}, {high}) snapshot answered {} matches, engine {}",
                        spec.series, served.matches, routed.matches
                    ));
                }
                report.range_checked += 1;
            }
        }
        report.overlays += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_check_passes_on_every_overlay() {
        let report = run_serve_check(&Profile::smoke()).expect("parity holds");
        assert_eq!(report.overlays, 4);
        assert_eq!(report.exact_checked, 4 * EXACT_PER_OVERLAY as u64);
        // Three range-capable overlays.
        assert_eq!(report.range_checked, 3 * RANGE_PER_OVERLAY as u64);
    }
}
