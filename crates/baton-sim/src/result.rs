//! Experiment results: series of points, rendered as text tables or CSV.

use std::collections::BTreeMap;

/// One x-position of a figure with the value of every series at that x.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// The x value (network size, tree level, shift size, …).
    pub x: f64,
    /// Series name → measured value.
    pub values: BTreeMap<String, f64>,
}

impl SeriesPoint {
    /// Creates a point at `x` with no values yet.
    pub fn at(x: f64) -> Self {
        Self {
            x,
            values: BTreeMap::new(),
        }
    }

    /// Sets the value of one series at this point.
    pub fn set(mut self, series: &str, value: f64) -> Self {
        self.values.insert(series.to_owned(), value);
        self
    }
}

/// The reproduction of one figure of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"8a"`.
    pub id: String,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// Label of the x-axis.
    pub x_label: String,
    /// Label of the y-axis.
    pub y_label: String,
    /// The measured points, in x order.
    pub points: Vec<SeriesPoint>,
}

impl FigureResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            points: Vec::new(),
        }
    }

    /// All series names appearing in any point, in alphabetical order.
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .points
            .iter()
            .flat_map(|p| p.values.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Value of `series` at the point with the given x, if measured.
    pub fn value_at(&self, x: f64, series: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .and_then(|p| p.values.get(series).copied())
    }

    /// Renders the result as an aligned text table.
    pub fn to_table(&self) -> String {
        let series = self.series_names();
        let mut out = String::new();
        out.push_str(&format!("Figure {} — {}\n", self.id, self.title));
        out.push_str(&format!("  ({} vs {})\n", self.y_label, self.x_label));
        let mut header = format!("{:>12}", self.x_label);
        for s in &series {
            header.push_str(&format!(" | {s:>20}"));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for point in &self.points {
            let mut row = format!("{:>12.0}", point.x);
            for s in &series {
                match point.values.get(s) {
                    Some(v) => row.push_str(&format!(" | {v:>20.2}")),
                    None => row.push_str(&format!(" | {:>20}", "-")),
                }
            }
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// Renders the result as CSV (header row then one row per point).
    pub fn to_csv(&self) -> String {
        let series = self.series_names();
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &series {
            out.push(',');
            out.push_str(&s.replace(',', ";"));
        }
        out.push('\n');
        for point in &self.points {
            out.push_str(&format!("{}", point.x));
            for s in &series {
                out.push(',');
                if let Some(v) = point.values.get(s) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Helper accumulating repeated measurements and producing their mean.
#[derive(Clone, Debug, Default)]
pub struct Averager {
    sum: f64,
    count: u64,
}

impl Averager {
    /// Creates an empty averager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measurement.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Adds `count` measurements that sum to `sum`.
    pub fn add_total(&mut self, sum: f64, count: u64) {
        self.sum += sum;
        self.count += count;
    }

    /// The mean of all measurements (0.0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of measurements.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averager_computes_means() {
        let mut avg = Averager::new();
        assert_eq!(avg.mean(), 0.0);
        avg.add(2.0);
        avg.add(4.0);
        assert_eq!(avg.mean(), 3.0);
        avg.add_total(12.0, 2);
        assert_eq!(avg.count(), 4);
        assert_eq!(avg.mean(), 4.5);
    }

    #[test]
    fn figure_result_table_and_csv_contain_all_series() {
        let mut fig = FigureResult::new("8x", "test figure", "N", "messages");
        fig.points
            .push(SeriesPoint::at(100.0).set("baton", 5.0).set("chord", 7.5));
        fig.points.push(SeriesPoint::at(200.0).set("baton", 6.0));
        let table = fig.to_table();
        assert!(table.contains("Figure 8x"));
        assert!(table.contains("baton"));
        assert!(table.contains("chord"));
        assert!(table.contains("7.50"));
        let csv = fig.to_csv();
        assert!(csv.starts_with("N,baton,chord"));
        assert!(csv.contains("200,6,"));
        assert_eq!(
            fig.series_names(),
            vec!["baton".to_owned(), "chord".to_owned()]
        );
        assert_eq!(fig.value_at(100.0, "chord"), Some(7.5));
        assert_eq!(fig.value_at(200.0, "chord"), None);
    }
}
