//! # baton-sim — experiment harness for the BATON reproduction
//!
//! Drivers that regenerate **every figure of the paper's evaluation**
//! (Figure 8(a)–(i), §V) from the BATON implementation in [`baton_core`] and
//! the two baselines ([`baton_chord`], [`baton_mtree`]), at a configurable
//! scale ([`Profile`]).
//!
//! All drivers are generic over the [`baton_net::Overlay`] trait: the
//! [`driver`] module holds the list of [`OverlaySpec`]s, and each figure
//! runs one measurement loop over that list rather than one hand-written
//! loop per system.
//!
//! | figure | driver | what it measures |
//! |---|---|---|
//! | 8(a) | [`figures::fig8ab`] | messages to find the join / replacement node |
//! | 8(b) | [`figures::fig8ab`] | messages to update routing tables on churn |
//! | 8(c) | [`figures::fig8c`] | messages per insert / delete |
//! | 8(d) | [`figures::fig8d`] | messages per exact-match query |
//! | 8(e) | [`figures::fig8e`] | messages per range query |
//! | 8(f) | [`figures::fig8f`] | access load per tree level |
//! | 8(g) | [`figures::fig8g`] | load-balancing messages per insert (uniform vs Zipf) |
//! | 8(h) | [`figures::fig8h`] | distribution of load-balancing shift sizes |
//! | 8(i) | [`figures::fig8i`] | extra messages under concurrent churn |
//!
//! Beyond the paper's message counts, the [`scenario`] module drives the
//! discrete-event engine in the time domain through a declarative registry:
//! each [`scenario::ScenarioSpec`] builds a [`scenario::ScenarioPlan`]
//! (phased workload, latency topology, fault plan) that one generic engine
//! runs against every registered overlay.  Five scenarios are registered —
//! `latency_under_churn`, `flash_crowd`, `regional_failure`,
//! `degraded_links` and `skew_ramp` — each reporting p50/p95/p99 virtual
//! latency per operation class and throughput (ops per virtual second) per
//! overlay.
//!
//! The `reproduce` binary (`cargo run -p baton-sim --bin reproduce --release`)
//! prints the tables for any subset of figures plus the scenario report;
//! `crates/bench` wraps the same drivers in Criterion benchmarks.
//!
//! ```
//! use baton_sim::{figures, Profile};
//!
//! let profile = Profile::smoke();
//! let figure = figures::run_figure("8d", &profile).unwrap();
//! assert_eq!(figure.id, "8d");
//! assert!(!figure.points.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod figures;
pub mod observe;
pub mod profile;
pub mod report;
pub mod result;
pub mod scenario;
pub mod serve_check;

pub use driver::{
    all_overlays, clear_overlay_filter, load_overlay, overlay_names, parse_threads,
    reference_overlay, set_overlay_filter, standard_overlays, OverlaySpec, ServeSupport,
};
pub use observe::{
    check_trace_jsonl, render_trace_chrome, render_trace_jsonl, trace_summary_table, TraceCheck,
};
pub use profile::Profile;
pub use report::{json_string, render_json, render_report, render_scenarios_json};
pub use result::{Averager, FigureResult, SeriesPoint};
pub use scenario::{
    all_scenarios, flash_crowd, latency_under_churn, run_scenario, run_scenario_full,
    run_scenario_traced, run_scenario_with_build, BuildKind, ScenarioPlan, ScenarioResult,
    ScenarioSeries, ScenarioSpec,
};
pub use serve_check::{run_serve_check, ServeCheckReport};
