//! Figure 8(f): access load of nodes at different tree levels.
//!
//! The headline claim of BATON: a tree overlay **without** a root hotspot.
//! The figure reports, for the largest network size of the profile, the
//! average number of messages handled per node at each level, separately for
//! the insert phase and for the exact-query phase.  Expected shape: the
//! insert load is roughly flat across levels and the search load at the
//! leaves is at least as high as at the root.
//!
//! The paper plots BATON alone, so the driver runs the
//! [`reference_overlay`](crate::driver::reference_overlay) — through the
//! generic [`Overlay`](baton_net::Overlay) interface, gated on the
//! `level_load` capability.

use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

use crate::driver::{load_overlay, reference_overlay};
use crate::profile::Profile;
use crate::result::{FigureResult, SeriesPoint};

/// Series of per-level load during the insert phase.
pub const SERIES_INSERT_LOAD: &str = "insert load";
/// Series of per-level load during the exact-query phase.
pub const SERIES_SEARCH_LOAD: &str = "search load";

/// Runs the per-level access-load measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8f",
        "Access load for nodes at different levels",
        "tree level",
        "messages handled per node",
    );
    let n = *profile.network_sizes.last().expect("profile has sizes");
    let seed = profile.rep_seed(0);
    let mut overlay = reference_overlay().build(profile, n, seed);
    if !overlay.capabilities().level_load {
        return figure;
    }

    // Phase 1: inserts.
    overlay.stats_mut().reset_received_counters();
    load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
    let insert_load = overlay.access_load_by_level();

    // Phase 2: exact queries.
    overlay.stats_mut().reset_received_counters();
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let mut rng = SimRng::seeded(seed ^ 0xF1F1);
    for _ in 0..(profile.query_count() * 4) {
        let key = generator.next_key(&mut rng);
        overlay.search_exact(key).expect("search");
    }
    let search_load = overlay.access_load_by_level();

    let max_level = insert_load
        .iter()
        .chain(search_load.iter())
        .map(|(l, _)| *l)
        .max()
        .unwrap_or(0);
    for level in 0..=max_level {
        let mut point = SeriesPoint::at(level as f64);
        if let Some((_, v)) = insert_load.iter().find(|(l, _)| *l == level) {
            point = point.set(SERIES_INSERT_LOAD, *v);
        }
        if let Some((_, v)) = search_load.iter().find(|(l, _)| *l == level) {
            point = point.set(SERIES_SEARCH_LOAD, *v);
        }
        figure.points.push(point);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_root_is_not_a_hotspot() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        assert!(figure.points.len() >= 3, "expected several tree levels");
        let root_search = figure.value_at(0.0, SERIES_SEARCH_LOAD).unwrap_or(0.0);
        // Average search load over the deepest two levels (the leaves).
        let deepest: Vec<f64> = figure
            .points
            .iter()
            .rev()
            .take(2)
            .filter_map(|p| p.values.get(SERIES_SEARCH_LOAD).copied())
            .collect();
        let leaf_search = deepest.iter().sum::<f64>() / deepest.len().max(1) as f64;
        // Paper: "the load is slightly higher at the leaves than at the
        // root" — at minimum, the root must not dominate.
        assert!(
            root_search <= leaf_search * 3.0,
            "root search load {root_search} dwarfs leaf load {leaf_search}"
        );
        // Insert load exists at every level that holds nodes.
        assert!(figure
            .points
            .iter()
            .any(|p| p.values.contains_key(SERIES_INSERT_LOAD)));
    }
}
