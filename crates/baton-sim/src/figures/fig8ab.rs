//! Figures 8(a) and 8(b): cost of join and leave operations.
//!
//! * **8(a)** — average messages to find the node that accepts a join and to
//!   find the replacement node for a departure, versus network size, for
//!   every overlay in the comparison.
//! * **8(b)** — average messages to update routing tables after a join or a
//!   departure, versus network size, for the same systems.
//!
//! Expected shape (paper §V-A): BATON's locate cost is nearly flat and well
//! below `log N`; Chord's grows with `log N`; the multiway tree is the most
//! expensive overall.  For table updates BATON needs `O(log N)` messages,
//! clearly below Chord's `O(log² N)`, while the multiway tree — which keeps
//! almost no routing state — is the cheapest.

use crate::driver::standard_overlays;
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Runs the churn-cost measurement and returns `(figure_8a, figure_8b)`.
pub fn run(profile: &Profile) -> (FigureResult, FigureResult) {
    let mut fig_a = FigureResult::new(
        "8a",
        "Finding the join node and the replacement node",
        "nodes",
        "messages per operation",
    );
    let mut fig_b = FigureResult::new(
        "8b",
        "Updating routing tables on join and leave",
        "nodes",
        "messages per operation",
    );
    let specs = standard_overlays();

    for &n in &profile.network_sizes {
        let mut locate = vec![Averager::new(); specs.len()];
        let mut update = vec![Averager::new(); specs.len()];
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            for (i, spec) in specs.iter().enumerate() {
                let mut overlay = spec.build(profile, n, seed);
                for _ in 0..profile.churn_ops {
                    let join = overlay.join_random().expect("join");
                    locate[i].add(join.locate_messages as f64);
                    update[i].add(join.update_messages as f64);
                    let leave = overlay.leave_random().expect("leave");
                    locate[i].add(leave.locate_messages as f64);
                    update[i].add(leave.update_messages as f64);
                }
            }
        }
        let mut point_a = SeriesPoint::at(n as f64);
        let mut point_b = SeriesPoint::at(n as f64);
        for (i, spec) in specs.iter().enumerate() {
            point_a = point_a.set(spec.series, locate[i].mean());
            point_b = point_b.set(spec.series, update[i].mean());
        }
        fig_a.points.push(point_a);
        fig_b.points.push(point_b);
    }
    (fig_a, fig_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{SERIES_BATON, SERIES_CHORD, SERIES_MTREE};

    #[test]
    fn churn_costs_have_the_papers_shape() {
        let profile = Profile::smoke();
        let (a, b) = run(&profile);
        assert_eq!(a.points.len(), profile.network_sizes.len());
        assert_eq!(b.points.len(), profile.network_sizes.len());
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        // 8(a): BATON locates a join/replacement spot in well under log N.
        let baton_locate = a.value_at(largest, SERIES_BATON).unwrap();
        assert!(baton_locate > 0.0 && baton_locate < 2.0 * log_n);
        // 8(b): BATON's table update is cheaper than Chord's.
        let baton_update = b.value_at(largest, SERIES_BATON).unwrap();
        let chord_update = b.value_at(largest, SERIES_CHORD).unwrap();
        assert!(
            baton_update < chord_update,
            "BATON table update ({baton_update:.1}) should be below Chord ({chord_update:.1})"
        );
        // The multiway tree keeps almost no routing state: cheapest updates.
        let mtree_update = b.value_at(largest, SERIES_MTREE).unwrap();
        assert!(mtree_update < baton_update);
    }
}
