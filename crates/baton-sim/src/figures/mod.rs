//! One driver per figure of the paper's evaluation (Figure 8(a)–(i)).
//!
//! Every driver takes a [`Profile`](crate::profile::Profile) and returns a
//! [`FigureResult`](crate::result::FigureResult) containing the same series
//! the paper plots.  All drivers are **generic over
//! [`Overlay`](baton_net::Overlay)**: they loop over the
//! [`OverlaySpec`](crate::driver::OverlaySpec)s of
//! [`standard_overlays`](crate::driver::standard_overlays) (or the
//! [`reference_overlay`](crate::driver::reference_overlay) for the
//! BATON-only figures) and never dispatch on a concrete system type, so a
//! new baseline appears in every figure by adding one spec.

pub mod fig8ab;
pub mod fig8c;
pub mod fig8d;
pub mod fig8e;
pub mod fig8f;
pub mod fig8g;
pub mod fig8h;
pub mod fig8i;

use crate::profile::Profile;
use crate::result::FigureResult;

/// Series name used for BATON measurements.
pub const SERIES_BATON: &str = "BATON";
/// Series name used for Chord measurements.
pub const SERIES_CHORD: &str = "Chord";
/// Series name used for the multiway-tree measurements.
pub const SERIES_MTREE: &str = "Multiway tree";
/// Series name used for the D3-Tree measurements.
pub const SERIES_D3TREE: &str = "D3-Tree";

/// Runs every figure of the paper at the given profile, in order.
pub fn run_all(profile: &Profile) -> Vec<FigureResult> {
    let (a, b) = fig8ab::run(profile);
    vec![
        a,
        b,
        fig8c::run(profile),
        fig8d::run(profile),
        fig8e::run(profile),
        fig8f::run(profile),
        fig8g::run(profile),
        fig8h::run(profile),
        fig8i::run(profile),
    ]
}

/// Runs a single figure by identifier (`"8a"`, `"8b"`, … `"8i"`).
///
/// Returns `None` for an unknown identifier.
pub fn run_figure(id: &str, profile: &Profile) -> Option<FigureResult> {
    match id.to_ascii_lowercase().as_str() {
        "8a" | "a" => Some(fig8ab::run(profile).0),
        "8b" | "b" => Some(fig8ab::run(profile).1),
        "8c" | "c" => Some(fig8c::run(profile)),
        "8d" | "d" => Some(fig8d::run(profile)),
        "8e" | "e" => Some(fig8e::run(profile)),
        "8f" | "f" => Some(fig8f::run(profile)),
        "8g" | "g" => Some(fig8g::run(profile)),
        "8h" | "h" => Some(fig8h::run(profile)),
        "8i" | "i" => Some(fig8i::run(profile)),
        _ => None,
    }
}

/// Identifiers of every figure, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec!["8a", "8b", "8c", "8d", "8e", "8f", "8g", "8h", "8i"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{load_overlay, standard_overlays};
    use baton_workload::KeyDistribution;

    #[test]
    fn run_figure_rejects_unknown_ids() {
        let profile = Profile::smoke();
        assert!(run_figure("9z", &profile).is_none());
    }

    #[test]
    fn every_standard_overlay_builds_and_loads() {
        let profile = Profile::smoke();
        for spec in standard_overlays() {
            let mut overlay = spec.build(&profile, 20, 1);
            assert_eq!(overlay.node_count(), 20);
            let data = load_overlay(&profile, &mut *overlay, KeyDistribution::Uniform, 1);
            assert_eq!(overlay.total_items(), data.len());
            overlay.validate().unwrap();
        }
    }
}
