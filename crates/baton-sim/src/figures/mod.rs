//! One driver per figure of the paper's evaluation (Figure 8(a)–(i)).
//!
//! Every driver takes a [`Profile`](crate::profile::Profile) and returns a
//! [`FigureResult`](crate::result::FigureResult) containing the same series
//! the paper plots.  The mapping from figure to driver, workload and modules
//! exercised is tabulated in `DESIGN.md` (per-experiment index) and the
//! measured numbers are recorded in `EXPERIMENTS.md`.

pub mod fig8ab;
pub mod fig8c;
pub mod fig8d;
pub mod fig8e;
pub mod fig8f;
pub mod fig8g;
pub mod fig8h;
pub mod fig8i;

use baton_core::{BatonConfig, BatonSystem, LoadBalanceConfig};
use baton_net::SimRng;
use baton_workload::{DatasetPlan, KeyDistribution};

use crate::profile::Profile;
use crate::result::FigureResult;

/// Series name used for BATON measurements.
pub const SERIES_BATON: &str = "BATON";
/// Series name used for Chord measurements.
pub const SERIES_CHORD: &str = "Chord";
/// Series name used for the multiway-tree measurements.
pub const SERIES_MTREE: &str = "Multiway tree";

/// Builds a BATON overlay of `n` nodes for experiment use.
///
/// Load balancing thresholds are sized for the profile's expected average
/// load so that the skew experiments can trigger balancing while the uniform
/// ones mostly do not, as in the paper.
pub(crate) fn build_baton(profile: &Profile, n: usize, seed: u64) -> BatonSystem {
    let avg_load = (profile.dataset_size(n) / n.max(1)).max(4);
    let config = BatonConfig::default()
        .with_load_balance(LoadBalanceConfig::for_average_load(avg_load));
    BatonSystem::build(config, seed, n).expect("building the BATON overlay cannot fail")
}

/// Bulk-loads a BATON overlay with the profile-scaled dataset.
pub(crate) fn load_baton(
    profile: &Profile,
    system: &mut BatonSystem,
    distribution: KeyDistribution,
    seed: u64,
) -> Vec<(u64, u64)> {
    let plan = DatasetPlan {
        values_per_node: 1000,
        distribution,
    }
    .scaled(profile.data_scale);
    let mut rng = SimRng::seeded(seed ^ 0xDA7A);
    let data = plan.generate(&mut rng, system.node_count());
    for (k, v) in &data {
        system.insert(*k, *v).expect("insert cannot fail");
    }
    data
}

/// Runs every figure of the paper at the given profile, in order.
pub fn run_all(profile: &Profile) -> Vec<FigureResult> {
    let (a, b) = fig8ab::run(profile);
    vec![
        a,
        b,
        fig8c::run(profile),
        fig8d::run(profile),
        fig8e::run(profile),
        fig8f::run(profile),
        fig8g::run(profile),
        fig8h::run(profile),
        fig8i::run(profile),
    ]
}

/// Runs a single figure by identifier (`"8a"`, `"8b"`, … `"8i"`).
///
/// Returns `None` for an unknown identifier.
pub fn run_figure(id: &str, profile: &Profile) -> Option<FigureResult> {
    match id.to_ascii_lowercase().as_str() {
        "8a" | "a" => Some(fig8ab::run(profile).0),
        "8b" | "b" => Some(fig8ab::run(profile).1),
        "8c" | "c" => Some(fig8c::run(profile)),
        "8d" | "d" => Some(fig8d::run(profile)),
        "8e" | "e" => Some(fig8e::run(profile)),
        "8f" | "f" => Some(fig8f::run(profile)),
        "8g" | "g" => Some(fig8g::run(profile)),
        "8h" | "h" => Some(fig8h::run(profile)),
        "8i" | "i" => Some(fig8i::run(profile)),
        _ => None,
    }
}

/// Identifiers of every figure, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec!["8a", "8b", "8c", "8d", "8e", "8f", "8g", "8h", "8i"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_figure_rejects_unknown_ids() {
        let profile = Profile::smoke();
        assert!(run_figure("9z", &profile).is_none());
    }

    #[test]
    fn helpers_build_and_load_networks() {
        let profile = Profile::smoke();
        let mut system = build_baton(&profile, 20, 1);
        assert_eq!(system.node_count(), 20);
        let data = load_baton(&profile, &mut system, KeyDistribution::Uniform, 1);
        assert_eq!(system.total_items(), data.len());
        baton_core::validate(&system).unwrap();
    }
}
