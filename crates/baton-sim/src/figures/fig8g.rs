//! Figure 8(g): average load-balancing messages per insert/delete, for
//! uniformly distributed data and for skewed (Zipfian 1.0) data.
//!
//! Expected shape (paper §V-D): the overhead is tiny for uniform data and
//! noticeably larger — but still very low — for skewed data (the paper
//! reports roughly one load-balancing message per 1500 insertions).

use baton_net::SimRng;
use baton_workload::{DatasetPlan, KeyDistribution};

use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

use super::build_baton;

/// Series for uniformly distributed data.
pub const SERIES_UNIFORM: &str = "uniform data";
/// Series for Zipf(1.0) skewed data.
pub const SERIES_SKEWED: &str = "skewed data (Zipf 1.0)";

fn measure(profile: &Profile, n: usize, distribution: KeyDistribution) -> f64 {
    let mut avg = Averager::new();
    for rep in 0..profile.repetitions {
        let seed = profile.rep_seed(rep);
        let mut system = build_baton(profile, n, seed);
        let plan = DatasetPlan {
            values_per_node: 1000,
            distribution,
        }
        .scaled(profile.data_scale);
        let mut rng = SimRng::seeded(seed ^ 0xBA1A);
        let data = plan.generate(&mut rng, n);
        for (k, v) in &data {
            let report = system.insert(*k, *v).expect("insert");
            let balance_messages = report.balance.as_ref().map_or(0, |b| b.messages);
            avg.add(balance_messages as f64);
        }
    }
    avg.mean()
}

/// Runs the load-balancing overhead measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8g",
        "Average messages of the load balancing operation",
        "nodes",
        "load-balancing messages per insert",
    );
    for &n in &profile.network_sizes {
        figure.points.push(
            SeriesPoint::at(n as f64)
                .set(SERIES_UNIFORM, measure(profile, n, KeyDistribution::Uniform))
                .set(
                    SERIES_SKEWED,
                    measure(profile, n, KeyDistribution::Zipf { theta: 1.0 }),
                ),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_data_costs_at_least_as_much_balancing_as_uniform() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        for point in &figure.points {
            let uniform = point.values[SERIES_UNIFORM];
            let skewed = point.values[SERIES_SKEWED];
            assert!(uniform >= 0.0);
            assert!(
                skewed + 1e-9 >= uniform,
                "skewed balancing ({skewed}) below uniform ({uniform}) at N = {}",
                point.x
            );
        }
    }
}
