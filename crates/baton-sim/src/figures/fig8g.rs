//! Figure 8(g): average load-balancing messages per insert/delete, for
//! uniformly distributed data and for skewed (Zipfian 1.0) data.
//!
//! Expected shape (paper §V-D): the overhead is tiny for uniform data and
//! noticeably larger — but still very low — for skewed data (the paper
//! reports roughly one load-balancing message per 1500 insertions).
//!
//! The paper plots BATON alone (the baselines have no balancing), so the
//! driver runs the [`reference_overlay`](crate::driver::reference_overlay)
//! through the generic interface, gated on the `load_balancing` capability;
//! the per-insert balancing cost comes from the
//! [`bulk_load`](baton_workload::runner::bulk_load) runner's aggregate.

use baton_net::SimRng;
use baton_workload::{runner, DatasetPlan, KeyDistribution};

use crate::driver::reference_overlay;
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Series for uniformly distributed data.
pub const SERIES_UNIFORM: &str = "uniform data";
/// Series for Zipf(1.0) skewed data.
pub const SERIES_SKEWED: &str = "skewed data (Zipf 1.0)";

fn measure(profile: &Profile, n: usize, distribution: KeyDistribution) -> f64 {
    let mut avg = Averager::new();
    for rep in 0..profile.repetitions {
        let seed = profile.rep_seed(rep);
        let mut overlay = reference_overlay().build(profile, n, seed);
        if !overlay.capabilities().load_balancing {
            return 0.0;
        }
        let plan = DatasetPlan {
            values_per_node: 1000,
            distribution,
        }
        .scaled(profile.data_scale);
        let mut rng = SimRng::seeded(seed ^ 0xBA1A);
        let data = plan.generate(&mut rng, n);
        let outcome = runner::bulk_load(&mut *overlay, &data).expect("bulk load");
        avg.add_total(outcome.balance_messages as f64, outcome.inserted);
    }
    avg.mean()
}

/// Runs the load-balancing overhead measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8g",
        "Average messages of the load balancing operation",
        "nodes",
        "load-balancing messages per insert",
    );
    for &n in &profile.network_sizes {
        figure.points.push(
            SeriesPoint::at(n as f64)
                .set(
                    SERIES_UNIFORM,
                    measure(profile, n, KeyDistribution::Uniform),
                )
                .set(
                    SERIES_SKEWED,
                    measure(profile, n, KeyDistribution::Zipf { theta: 1.0 }),
                ),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_data_costs_at_least_as_much_balancing_as_uniform() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        for point in &figure.points {
            let uniform = point.values[SERIES_UNIFORM];
            let skewed = point.values[SERIES_SKEWED];
            assert!(uniform >= 0.0);
            assert!(
                skewed + 1e-9 >= uniform,
                "skewed balancing ({skewed}) below uniform ({uniform}) at N = {}",
                point.x
            );
        }
    }
}
