//! Figure 8(e): cost of range queries versus network size.
//!
//! BATON answers a range query in `O(log N + X)` messages, where `X` is the
//! number of nodes whose ranges intersect the query.  Chord cannot answer
//! range queries at all (hashing destroys order), so — as in the paper — it
//! does not appear in this figure; the multiway tree answers them by walking
//! neighbour links after a more expensive initial descent.

use baton_mtree::MTreeSystem;
use baton_net::SimRng;
use baton_workload::{KeyDistribution, Query, QueryWorkload};

use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

use super::{build_baton, load_baton, SERIES_BATON, SERIES_MTREE};

/// Series reporting how many nodes each BATON range query touched.
pub const SERIES_NODES_COVERED: &str = "BATON nodes covered (X)";

/// Runs the range-query measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8e",
        "Range query",
        "nodes",
        "messages per query",
    );

    for &n in &profile.network_sizes {
        let mut baton_avg = Averager::new();
        let mut covered_avg = Averager::new();
        let mut mtree_avg = Averager::new();
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let workload = QueryWorkload {
                range_queries: profile.query_count(),
                distribution: KeyDistribution::Uniform,
                ..QueryWorkload::paper()
            };
            let queries = workload.ranges(&mut SimRng::seeded(seed ^ 0x4A4E));

            let mut baton = build_baton(profile, n, seed);
            load_baton(profile, &mut baton, KeyDistribution::Uniform, seed);
            let mut mtree = MTreeSystem::build(seed, n).expect("mtree build");

            for query in &queries {
                let Query::Range { low, high } = query else { continue };
                let report = baton
                    .search_range(baton_core::KeyRange::new(*low, *high))
                    .expect("range search");
                baton_avg.add(report.messages as f64);
                covered_avg.add(report.nodes_visited as f64);
                mtree_avg.add(mtree.search_range(*low, *high).expect("range").messages as f64);
            }
        }
        figure.points.push(
            SeriesPoint::at(n as f64)
                .set(SERIES_BATON, baton_avg.mean())
                .set(SERIES_NODES_COVERED, covered_avg.mean())
                .set(SERIES_MTREE, mtree_avg.mean()),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_cost_is_log_n_plus_coverage() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let covered = figure.value_at(largest, SERIES_NODES_COVERED).unwrap();
        assert!(covered >= 1.0);
        assert!(
            baton <= 2.0 * log_n + covered + 4.0,
            "range cost {baton} exceeds log N + X bound"
        );
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(mtree > 0.0);
    }
}
