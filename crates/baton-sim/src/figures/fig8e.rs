//! Figure 8(e): cost of range queries versus network size.
//!
//! BATON answers a range query in `O(log N + X)` messages, where `X` is the
//! number of nodes whose ranges intersect the query.  Chord cannot answer
//! range queries at all (hashing destroys order) — the generic driver
//! discovers that through [`baton_net::OverlayCapabilities::range_queries`]
//! and omits the series, as the paper does; the multiway tree answers them
//! by walking neighbour links after a more expensive initial descent.

use baton_net::SimRng;
use baton_workload::{KeyDistribution, Query, QueryWorkload};

use crate::driver::standard_overlays;
use crate::figures::SERIES_BATON;
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Series reporting how many nodes each BATON range query touched.
pub const SERIES_NODES_COVERED: &str = "BATON nodes covered (X)";

/// Runs the range-query measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new("8e", "Range query", "nodes", "messages per query");
    let specs = standard_overlays();
    // Capabilities are a property of the system, not of a particular build:
    // probe each spec once on a tiny instance so unsupported systems (Chord)
    // never pay for full-size throwaway builds below.
    let supported: Vec<bool> = specs
        .iter()
        .map(|spec| spec.build(profile, 2, 0).capabilities().range_queries)
        .collect();

    for &n in &profile.network_sizes {
        let mut averages = vec![Averager::new(); specs.len()];
        let mut covered = vec![Averager::new(); specs.len()];
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let workload = QueryWorkload {
                range_queries: profile.query_count(),
                distribution: KeyDistribution::Uniform,
                ..QueryWorkload::paper()
            };
            let queries = workload.ranges(&mut SimRng::seeded(seed ^ 0x4A4E));

            for (i, spec) in specs.iter().enumerate() {
                if !supported[i] {
                    continue;
                }
                let mut overlay = spec.build(profile, n, seed);
                crate::driver::load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
                for query in &queries {
                    let Query::Range { low, high } = query else {
                        continue;
                    };
                    let cost = overlay.search_range(*low, *high).expect("range search");
                    averages[i].add(cost.messages as f64);
                    covered[i].add(cost.nodes_visited as f64);
                }
            }
        }
        let mut point = SeriesPoint::at(n as f64);
        for (i, spec) in specs.iter().enumerate() {
            if !supported[i] {
                continue;
            }
            point = point.set(spec.series, averages[i].mean());
            // The paper annotates BATON's curve with the number of nodes
            // covered (the X of O(log N + X)).
            if spec.series == SERIES_BATON {
                point = point.set(SERIES_NODES_COVERED, covered[i].mean());
            }
        }
        figure.points.push(point);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{SERIES_CHORD, SERIES_MTREE};

    #[test]
    fn range_query_cost_is_log_n_plus_coverage() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let covered = figure.value_at(largest, SERIES_NODES_COVERED).unwrap();
        assert!(covered >= 1.0);
        assert!(
            baton <= 2.0 * log_n + covered + 4.0,
            "range cost {baton} exceeds log N + X bound"
        );
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(mtree > 0.0);
    }

    #[test]
    fn chord_is_omitted_by_capability_not_by_name() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        assert!(
            !figure.series_names().iter().any(|s| s == SERIES_CHORD),
            "Chord cannot appear in the range-query figure"
        );
    }
}
