//! Figure 8(d): cost of exact-match queries versus network size.
//!
//! Expected shape (paper §V-B): BATON ≈ Chord ≈ `O(log N)` with BATON
//! slightly higher (tree height up to `1.44 log N`), and the multiway tree
//! clearly more expensive.

use baton_chord::ChordSystem;
use baton_mtree::MTreeSystem;
use baton_net::SimRng;
use baton_workload::{KeyDistribution, QueryWorkload, Query};

use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

use super::{build_baton, load_baton, SERIES_BATON, SERIES_CHORD, SERIES_MTREE};

/// Runs the exact-match query measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8d",
        "Exact match query",
        "nodes",
        "messages per query",
    );

    for &n in &profile.network_sizes {
        let mut baton_avg = Averager::new();
        let mut chord_avg = Averager::new();
        let mut mtree_avg = Averager::new();
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let workload = QueryWorkload {
                exact_queries: profile.query_count(),
                distribution: KeyDistribution::Uniform,
                ..QueryWorkload::paper()
            };
            let queries = workload.exact(&mut SimRng::seeded(seed ^ 0xE5AC));

            let mut baton = build_baton(profile, n, seed);
            load_baton(profile, &mut baton, KeyDistribution::Uniform, seed);
            let mut chord = ChordSystem::build(seed, n).expect("chord build");
            let mut mtree = MTreeSystem::build(seed, n).expect("mtree build");

            for query in &queries {
                let Query::Exact(key) = query else { continue };
                baton_avg.add(baton.search_exact(*key).expect("search").messages as f64);
                chord_avg.add(chord.search_exact(*key).expect("search").messages as f64);
                mtree_avg.add(mtree.search_exact(*key).expect("search").messages as f64);
            }
        }
        figure.points.push(
            SeriesPoint::at(n as f64)
                .set(SERIES_BATON, baton_avg.mean())
                .set(SERIES_CHORD, chord_avg.mean())
                .set(SERIES_MTREE, mtree_avg.mean()),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_query_costs_scale_like_log_n() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        assert_eq!(figure.points.len(), profile.network_sizes.len());
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(baton > 0.0 && baton <= 2.0 * log_n + 4.0, "BATON query cost {baton}");
        assert!(mtree > baton, "multiway ({mtree:.1}) should exceed BATON ({baton:.1})");
        // Costs grow (weakly) with network size.
        let smallest = *profile.network_sizes.first().unwrap() as f64;
        let baton_small = figure.value_at(smallest, SERIES_BATON).unwrap();
        assert!(baton >= baton_small * 0.8);
    }
}
