//! Figure 8(d): cost of exact-match queries versus network size.
//!
//! Expected shape (paper §V-B): BATON ≈ Chord ≈ `O(log N)` with BATON
//! slightly higher (tree height up to `1.44 log N`), and the multiway tree
//! clearly more expensive.

use baton_net::SimRng;
use baton_workload::{runner, KeyDistribution, QueryWorkload};

use crate::driver::{load_overlay, standard_overlays};
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Runs the exact-match query measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new("8d", "Exact match query", "nodes", "messages per query");
    let specs = standard_overlays();

    for &n in &profile.network_sizes {
        let mut averages = vec![Averager::new(); specs.len()];
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let workload = QueryWorkload {
                exact_queries: profile.query_count(),
                distribution: KeyDistribution::Uniform,
                ..QueryWorkload::paper()
            };
            // One query batch per repetition, identical for every system.
            let queries = workload.exact(&mut SimRng::seeded(seed ^ 0xE5AC));

            for (i, spec) in specs.iter().enumerate() {
                let mut overlay = spec.build(profile, n, seed);
                load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
                let outcome = runner::run_queries(&mut *overlay, &queries).expect("queries");
                averages[i].add_total(outcome.exact_messages as f64, outcome.exact_executed);
            }
        }
        let mut point = SeriesPoint::at(n as f64);
        for (i, spec) in specs.iter().enumerate() {
            point = point.set(spec.series, averages[i].mean());
        }
        figure.points.push(point);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{SERIES_BATON, SERIES_MTREE};

    #[test]
    fn exact_query_costs_scale_like_log_n() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        assert_eq!(figure.points.len(), profile.network_sizes.len());
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(
            baton > 0.0 && baton <= 2.0 * log_n + 4.0,
            "BATON query cost {baton}"
        );
        assert!(
            mtree > baton,
            "multiway ({mtree:.1}) should exceed BATON ({baton:.1})"
        );
        // Costs grow (weakly) with network size.
        let smallest = *profile.network_sizes.first().unwrap() as f64;
        let baton_small = figure.value_at(smallest, SERIES_BATON).unwrap();
        assert!(baton >= baton_small * 0.8);
    }
}
