//! Figure 8(i): effect of network dynamics — extra messages caused by
//! concurrent joins and leaves.
//!
//! The paper observes that while a join or departure is being absorbed, the
//! knowledge held by other nodes is briefly stale and messages can be
//! "forwarded to wrong destinations", costing extra hops; the more
//! operations are in flight concurrently, the more extra messages are paid.
//!
//! ### Model
//!
//! The simulator executes operations one at a time, so concurrency is
//! modelled explicitly (and documented in `DESIGN.md` / `EXPERIMENTS.md`):
//! during a batch of `c` concurrent joins and leaves over an `N`-node
//! overlay, a routing hop taken by any of those operations encounters a
//! stale link with probability `(c − 1) / (2 N)` — the expected fraction of
//! links modified by the other in-flight operations and not yet repaired —
//! and every stale encounter costs two extra messages (the bounced message
//! plus the detour through a neighbour of the parent, §III-D).  The figure
//! reports the *expected* extra messages per operation, measured over the
//! actual hop counts of the batch.
//!
//! The paper plots BATON alone; the batch itself runs through the generic
//! [`run_churn`](baton_workload::runner::run_churn) runner.

use baton_workload::{runner, ChurnEvent};

use crate::driver::reference_overlay;
use crate::figures::SERIES_BATON;
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Concurrency levels (number of simultaneous joins + leaves) evaluated.
pub fn concurrency_levels() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}

/// Runs the network-dynamics measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8i",
        "Effect of network dynamics (concurrent joins / leaves)",
        "concurrent operations",
        "extra messages per operation",
    );
    let n = *profile.network_sizes.last().expect("profile has sizes");

    for c in concurrency_levels() {
        let mut extra = Averager::new();
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let mut overlay = reference_overlay().build(profile, n, seed);
            let batch = baton_workload::ConcurrentChurnBatch::of_intensity(c);
            let stale_probability = (c.saturating_sub(1)) as f64 / (2.0 * n as f64);
            // Perform the batch; every hop of every operation may hit a
            // stale link left behind by the other in-flight operations.
            let events: Vec<ChurnEvent> = std::iter::repeat_n(ChurnEvent::Join, batch.joins)
                .chain(std::iter::repeat_n(ChurnEvent::Leave, batch.leaves))
                .collect();
            let outcome = runner::run_churn(&mut *overlay, &events, 2).expect("churn batch");
            let total_hops = outcome.locate_messages + outcome.update_messages;
            let ops = outcome.executed();
            let expected_extra = total_hops as f64 * stale_probability * 2.0;
            extra.add(expected_extra / ops.max(1) as f64);
        }
        figure
            .points
            .push(SeriesPoint::at(c as f64).set(SERIES_BATON, extra.mean()));
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_messages_grow_with_concurrency() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        let levels = concurrency_levels();
        assert_eq!(figure.points.len(), levels.len());
        let first = figure.value_at(levels[0] as f64, SERIES_BATON).unwrap();
        let last = figure
            .value_at(*levels.last().unwrap() as f64, SERIES_BATON)
            .unwrap();
        assert!(
            last > first,
            "extra messages should grow with concurrency ({first} vs {last})"
        );
        assert!(first >= 0.0);
    }
}
