//! Figure 8(c): cost of insert and delete operations versus network size.
//!
//! Expected shape (paper §V-B): both BATON and Chord stay close to
//! `O(log N)`; BATON is slightly above Chord (the balanced tree's height can
//! reach `1.44 log N`); the multiway tree costs noticeably more.

use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

use crate::driver::{load_overlay, standard_overlays};
use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

/// Runs the insert/delete cost measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8c",
        "Insert and delete operations",
        "nodes",
        "messages per operation",
    );
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);
    let specs = standard_overlays();

    for &n in &profile.network_sizes {
        let ops = profile.query_count();
        let mut averages = vec![Averager::new(); specs.len()];
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            // One key stream per repetition, identical for every system.
            let mut rng = SimRng::seeded(seed ^ 0xC0DE);
            let keys: Vec<u64> = (0..ops).map(|_| generator.next_key(&mut rng)).collect();

            for (i, spec) in specs.iter().enumerate() {
                let mut overlay = spec.build(profile, n, seed);
                load_overlay(profile, &mut *overlay, KeyDistribution::Uniform, seed);
                for (j, key) in keys.iter().enumerate() {
                    let insert = overlay.insert(*key, j as u64).expect("insert");
                    averages[i].add(insert.messages as f64);
                    let delete = overlay.delete(*key).expect("delete");
                    averages[i].add(delete.messages as f64);
                }
            }
        }
        let mut point = SeriesPoint::at(n as f64);
        for (i, spec) in specs.iter().enumerate() {
            point = point.set(spec.series, averages[i].mean());
        }
        figure.points.push(point);
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{SERIES_BATON, SERIES_MTREE};

    #[test]
    fn insert_delete_costs_are_logarithmic_and_ordered() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(baton > 0.0 && baton <= 2.0 * log_n + 4.0);
        // The multiway tree (no sideways shortcuts) costs more than BATON.
        assert!(mtree > baton);
    }
}
