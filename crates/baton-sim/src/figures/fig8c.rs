//! Figure 8(c): cost of insert and delete operations versus network size.
//!
//! Expected shape (paper §V-B): both BATON and Chord stay close to
//! `O(log N)`; BATON is slightly above Chord (the balanced tree's height can
//! reach `1.44 log N`); the multiway tree costs noticeably more.

use baton_chord::ChordSystem;
use baton_mtree::MTreeSystem;
use baton_net::SimRng;
use baton_workload::{KeyDistribution, KeyGenerator};

use crate::profile::Profile;
use crate::result::{Averager, FigureResult, SeriesPoint};

use super::{build_baton, load_baton, SERIES_BATON, SERIES_CHORD, SERIES_MTREE};

/// Runs the insert/delete cost measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8c",
        "Insert and delete operations",
        "nodes",
        "messages per operation",
    );
    let generator = KeyGenerator::paper(KeyDistribution::Uniform);

    for &n in &profile.network_sizes {
        let ops = profile.query_count();
        let mut baton_avg = Averager::new();
        let mut chord_avg = Averager::new();
        let mut mtree_avg = Averager::new();
        for rep in 0..profile.repetitions {
            let seed = profile.rep_seed(rep);
            let mut rng = SimRng::seeded(seed ^ 0xC0DE);

            let mut baton = build_baton(profile, n, seed);
            load_baton(profile, &mut baton, KeyDistribution::Uniform, seed);
            let mut chord = ChordSystem::build(seed, n).expect("chord build");
            let mut mtree = MTreeSystem::build(seed, n).expect("mtree build");

            for i in 0..ops {
                let key = generator.next_key(&mut rng);
                let insert = baton.insert(key, i as u64).expect("insert");
                baton_avg.add(insert.messages as f64);
                let delete = baton.delete(key).expect("delete");
                baton_avg.add(delete.messages as f64);

                chord_avg.add(chord.insert(key, i as u64).expect("insert").messages as f64);
                chord_avg.add(chord.delete(key).expect("delete").messages as f64);

                mtree_avg.add(mtree.insert(key).expect("insert").messages as f64);
                mtree_avg.add(mtree.delete(key).expect("delete").messages as f64);
            }
        }
        figure.points.push(
            SeriesPoint::at(n as f64)
                .set(SERIES_BATON, baton_avg.mean())
                .set(SERIES_CHORD, chord_avg.mean())
                .set(SERIES_MTREE, mtree_avg.mean()),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_costs_are_logarithmic_and_ordered() {
        let profile = Profile::smoke();
        let figure = run(&profile);
        let largest = *profile.network_sizes.last().unwrap() as f64;
        let log_n = largest.log2();
        let baton = figure.value_at(largest, SERIES_BATON).unwrap();
        let mtree = figure.value_at(largest, SERIES_MTREE).unwrap();
        assert!(baton > 0.0 && baton <= 2.0 * log_n + 4.0);
        // The multiway tree (no sideways shortcuts) costs more than BATON.
        assert!(mtree > baton);
    }
}
