//! Figure 8(h): distribution of the number of nodes involved in a single
//! load-balancing operation ("size of load balancing process").
//!
//! Expected shape (paper §V-D): strongly decaying — most balancing actions
//! involve only the two nodes exchanging data, and the frequency of longer
//! restructuring shifts falls off roughly exponentially with the shift
//! length.
//!
//! BATON-only (the baselines have no balancing): runs the
//! [`reference_overlay`](crate::driver::reference_overlay) through the
//! generic interface and reads
//! [`balance_shift_histogram`](baton_net::Overlay::balance_shift_histogram).

use baton_net::SimRng;
use baton_workload::{runner, DatasetPlan, KeyDistribution};

use crate::driver::reference_overlay;
use crate::profile::Profile;
use crate::result::{FigureResult, SeriesPoint};

/// Series name: fraction of balancing operations of each size.
pub const SERIES_FREQUENCY: &str = "fraction of balancing operations";

/// Runs the shift-size distribution measurement.
pub fn run(profile: &Profile) -> FigureResult {
    let mut figure = FigureResult::new(
        "8h",
        "Size of the load balancing process",
        "nodes involved",
        "fraction of operations",
    );
    let n = *profile.network_sizes.last().expect("profile has sizes");
    let mut histogram = baton_net::Histogram::new();
    for rep in 0..profile.repetitions {
        let seed = profile.rep_seed(rep);
        let mut overlay = reference_overlay().build(profile, n, seed);
        let plan = DatasetPlan {
            values_per_node: 1000,
            distribution: KeyDistribution::Zipf { theta: 1.0 },
        }
        .scaled(profile.data_scale);
        let mut rng = SimRng::seeded(seed ^ 0x51FE);
        let data = plan.generate(&mut rng, n);
        runner::bulk_load(&mut *overlay, &data).expect("bulk load");
        if let Some(shifts) = overlay.balance_shift_histogram() {
            histogram.merge(shifts);
        }
    }
    if histogram.total() == 0 {
        // No balancing triggered at this scale (or the reference overlay has
        // no balancing); report an explicit zero point so the table is never
        // empty.
        figure
            .points
            .push(SeriesPoint::at(0.0).set(SERIES_FREQUENCY, 0.0));
        return figure;
    }
    // Report individual sizes up to TAIL_START, then aggregate the long tail
    // into a single bucket so the table stays readable (the paper's figure
    // is a distribution plot; the tail mass is what matters there).
    const TAIL_START: usize = 16;
    let total = histogram.total() as f64;
    let mut tail = 0u64;
    for (size, count) in histogram.iter() {
        if size <= TAIL_START {
            figure
                .points
                .push(SeriesPoint::at(size as f64).set(SERIES_FREQUENCY, count as f64 / total));
        } else {
            tail += count;
        }
    }
    if tail > 0 {
        figure.points.push(
            SeriesPoint::at((TAIL_START + 1) as f64).set(SERIES_FREQUENCY, tail as f64 / total),
        );
    }
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_sizes_concentrate_on_small_values() {
        // Use a slightly larger data scale so that balancing triggers even
        // in the smoke profile.
        let mut profile = Profile::smoke();
        profile.data_scale = 0.05;
        let figure = run(&profile);
        assert!(!figure.points.is_empty());
        let total: f64 = figure
            .points
            .iter()
            .map(|p| p.values[SERIES_FREQUENCY])
            .sum();
        if total > 0.0 {
            // Frequencies form a distribution…
            assert!((total - 1.0).abs() < 1e-6);
            // …whose mass sits at small shift sizes (2–4 nodes).
            let small_mass: f64 = figure
                .points
                .iter()
                .filter(|p| p.x <= 4.0)
                .map(|p| p.values[SERIES_FREQUENCY])
                .sum();
            assert!(
                small_mass >= 0.5,
                "most balancing operations should involve few nodes (got {small_mass})"
            );
        }
    }
}
